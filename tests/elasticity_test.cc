// The closed elasticity loop: the pure heartbeat state machine, the
// autoscaler policies and their registry, the gate's slow-start ramp and
// crash freeze, the [elasticity] spec section, and full-run edge cases —
// a node that rejoins inside the detection window, a false declaration
// that recovers, heartbeat loss while a node drains — plus bit-exact pins
// of the headline flash-crowd scenario (decisions CSV hash, telemetry
// on/off identity).

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "control/gate.h"
#include "core/export.h"
#include "core/spec.h"
#include "db/system.h"
#include "elasticity/autoscaler.h"
#include "elasticity/heartbeat.h"
#include "sim/simulator.h"
#include "telemetry/audit.h"

namespace alc {
namespace {

using elasticity::HealthEvent;
using elasticity::HealthState;

// ---------------------------------------------------------------------------
// HeartbeatDetector: pure threshold state machine.

elasticity::HeartbeatConfig DetectorConfig() {
  elasticity::HeartbeatConfig config;
  config.suspect_after = 2;
  config.down_after = 4;
  config.clear_after = 2;
  return config;
}

TEST(HeartbeatDetectorTest, ConsecutiveMissThresholds) {
  elasticity::HeartbeatDetector detector(DetectorConfig(), 2);
  EXPECT_EQ(detector.Observe(0, 0, true, 0.0), HealthEvent::kNone);
  EXPECT_EQ(detector.Observe(0, 0, true, 0.0), HealthEvent::kSuspected);
  EXPECT_EQ(detector.state(0), HealthState::kSuspect);
  EXPECT_EQ(detector.Observe(0, 0, true, 0.0), HealthEvent::kNone);
  EXPECT_EQ(detector.Observe(0, 0, true, 0.0), HealthEvent::kDeclaredDown);
  EXPECT_EQ(detector.state(0), HealthState::kDown);
  EXPECT_EQ(detector.consecutive_misses(0), 4);
  // Recovery needs clear_after consecutive good beats.
  EXPECT_EQ(detector.Observe(0, 0, false, 0.0), HealthEvent::kNone);
  EXPECT_EQ(detector.Observe(0, 0, false, 0.0), HealthEvent::kRecovered);
  EXPECT_EQ(detector.state(0), HealthState::kAlive);
  // Node 1 was never touched.
  EXPECT_EQ(detector.state(1), HealthState::kAlive);
}

TEST(HeartbeatDetectorTest, SuspectClearsWithoutDeclaration) {
  elasticity::HeartbeatDetector detector(DetectorConfig(), 1);
  EXPECT_EQ(detector.Observe(0, 0, true, 0.0), HealthEvent::kNone);
  EXPECT_EQ(detector.Observe(0, 0, true, 0.0), HealthEvent::kSuspected);
  // The node answers again before down_after: cleared, never declared.
  EXPECT_EQ(detector.Observe(0, 0, false, 0.0), HealthEvent::kNone);
  EXPECT_EQ(detector.Observe(0, 0, false, 0.0), HealthEvent::kCleared);
  EXPECT_EQ(detector.state(0), HealthState::kAlive);
  EXPECT_EQ(detector.consecutive_misses(0), 0);
}

TEST(HeartbeatDetectorTest, GoodBeatResetsMissStreak) {
  elasticity::HeartbeatDetector detector(DetectorConfig(), 1);
  EXPECT_EQ(detector.Observe(0, 0, true, 0.0), HealthEvent::kNone);
  EXPECT_EQ(detector.Observe(0, 0, false, 0.0), HealthEvent::kNone);
  EXPECT_EQ(detector.consecutive_misses(0), 0);
  // The streak must rebuild from scratch.
  EXPECT_EQ(detector.Observe(0, 0, true, 0.0), HealthEvent::kNone);
  EXPECT_EQ(detector.Observe(0, 0, true, 0.0), HealthEvent::kSuspected);
}

TEST(HeartbeatDetectorTest, ResetForgetsHistory) {
  elasticity::HeartbeatDetector detector(DetectorConfig(), 1);
  detector.Observe(0, 0, true, 0.0);
  detector.Observe(0, 0, true, 0.0);
  detector.Observe(0, 0, true, 0.0);
  ASSERT_EQ(detector.state(0), HealthState::kSuspect);
  detector.Reset(0);
  EXPECT_EQ(detector.state(0), HealthState::kAlive);
  EXPECT_EQ(detector.consecutive_misses(0), 0);
  EXPECT_EQ(detector.Observe(0, 0, true, 0.0), HealthEvent::kNone);
}

// ---------------------------------------------------------------------------
// Autoscaler policies: streaks, dead band, cooldown, PI drive.

elasticity::FleetSample Sample(double time, double queue_factor) {
  elasticity::FleetSample sample;
  sample.time = time;
  sample.live = 4;
  sample.standby = 2;
  sample.queue_factor = queue_factor;
  return sample;
}

TEST(AutoscalerTest, HysteresisNeedsStreakThenCoolsDown) {
  elasticity::HysteresisAutoscaler::Config config;
  config.up_queue_factor = 1.0;
  config.down_queue_factor = 0.1;
  config.hold_ticks = 2;
  config.cooldown = 5.0;
  elasticity::HysteresisAutoscaler scaler(config);

  EXPECT_EQ(scaler.Update(Sample(1.0, 2.0)).delta, 0);  // streak 1 of 2
  const elasticity::ScaleDecision up = scaler.Update(Sample(2.0, 2.0));
  EXPECT_EQ(up.delta, 1);
  EXPECT_STREQ(up.reason, "overload");
  // Still overloaded, but inside the cooldown window.
  const elasticity::ScaleDecision held = scaler.Update(Sample(3.0, 2.0));
  EXPECT_EQ(held.delta, 0);
  EXPECT_STREQ(held.reason, "cooldown");
  // The streak kept building through the cooldown (t=3 counted), so the
  // first post-cooldown sample fires at once — then cools down again.
  EXPECT_EQ(scaler.Update(Sample(7.5, 2.0)).delta, 1);
  EXPECT_EQ(scaler.Update(Sample(8.5, 2.0)).delta, 0);
}

TEST(AutoscalerTest, HysteresisDeadBandHoldsAndUnderloadDrains) {
  elasticity::HysteresisAutoscaler::Config config;
  config.up_queue_factor = 1.0;
  config.down_queue_factor = 0.1;
  config.hold_ticks = 2;
  config.cooldown = 0.0;
  elasticity::HysteresisAutoscaler scaler(config);

  // Between the thresholds: hold forever, streaks reset.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(scaler.Update(Sample(i, 0.5)).delta, 0);
  }
  EXPECT_EQ(scaler.Update(Sample(10.0, 0.01)).delta, 0);
  const elasticity::ScaleDecision down = scaler.Update(Sample(11.0, 0.01));
  EXPECT_EQ(down.delta, -1);
  EXPECT_STREQ(down.reason, "underload");
}

TEST(AutoscalerTest, PiDrivesOnErrorAndClampsIntegral) {
  elasticity::PiAutoscaler::Config config;
  config.target_queue_factor = 0.5;
  config.kp = 2.0;
  config.ki = 0.4;
  config.integral_clamp = 5.0;
  config.cooldown = 0.0;
  elasticity::PiAutoscaler scaler(config);

  // e = 1.0 -> proportional drive alone is 2.0 >= 1: immediate scale-up.
  const elasticity::ScaleDecision up = scaler.Update(Sample(1.0, 1.5));
  EXPECT_EQ(up.delta, 1);
  EXPECT_STREQ(up.reason, "drive-up");

  // A long saturated error must not wind the integral past the clamp,
  // no matter how many intervals it persists (anti-windup).
  elasticity::PiAutoscaler saturated(config);
  for (int i = 0; i < 50; ++i) {
    saturated.Update(Sample(i, 1.5));
    control::DecisionState state;
    saturated.DescribeDecision(&state);
    double integral = 1e300;
    for (int s = 0; s < state.num_values; ++s) {
      if (std::string(state.names[s]) == "integral") {
        integral = state.values[s];
      }
    }
    EXPECT_LE(integral, 5.0);
    EXPECT_GE(integral, -5.0);
  }
}

TEST(AutoscalerTest, RegistryKnowsBuiltinsAndRejectsUnknown) {
  elasticity::AutoscalerRegistry& registry =
      elasticity::AutoscalerRegistry::Global();
  EXPECT_TRUE(registry.Contains("none"));
  EXPECT_TRUE(registry.Contains("hysteresis"));
  EXPECT_TRUE(registry.Contains("pi"));
  EXPECT_FALSE(registry.Contains("warp-drive"));

  util::ParamMap params;
  elasticity::AutoscalerContext context;
  context.params = &params;
  std::string error;
  EXPECT_EQ(registry.Make("warp-drive", context, &error), nullptr);
  EXPECT_NE(error.find("warp-drive"), std::string::npos);
  auto pi = registry.Make("pi", context, &error);
  ASSERT_NE(pi, nullptr);
  EXPECT_EQ(pi->name(), "pi");
}

TEST(AutoscalerTest, ParamBridgesRoundTrip) {
  elasticity::HysteresisAutoscaler::Config hysteresis;
  hysteresis.up_queue_factor = 1.7;
  hysteresis.down_queue_factor = 0.3;
  hysteresis.hold_ticks = 4;
  hysteresis.cooldown = 9.0;
  util::ParamMap params;
  elasticity::AppendHysteresisParams(hysteresis, &params);
  const elasticity::HysteresisAutoscaler::Config hysteresis_back =
      elasticity::HysteresisFromParams(params);
  EXPECT_EQ(hysteresis_back.up_queue_factor, 1.7);
  EXPECT_EQ(hysteresis_back.down_queue_factor, 0.3);
  EXPECT_EQ(hysteresis_back.hold_ticks, 4);
  EXPECT_EQ(hysteresis_back.cooldown, 9.0);

  elasticity::PiAutoscaler::Config pi;
  pi.target_queue_factor = 0.8;
  pi.kp = 3.0;
  pi.ki = 0.7;
  util::ParamMap pi_params;
  elasticity::AppendPiParams(pi, &pi_params);
  const elasticity::PiAutoscaler::Config pi_back =
      elasticity::PiFromParams(pi_params);
  EXPECT_EQ(pi_back.target_queue_factor, 0.8);
  EXPECT_EQ(pi_back.kp, 3.0);
  EXPECT_EQ(pi_back.ki, 0.7);
}

// ---------------------------------------------------------------------------
// AdmissionGate: slow-start ramp cap and crash freeze.

db::SystemConfig GateSystemConfig() {
  db::SystemConfig config;
  config.physical.num_terminals = 50;
  config.physical.think_time_mean = 0.05;
  config.physical.num_cpus = 4;
  config.physical.cpu_init_mean = 0.001;
  config.physical.cpu_access_mean = 0.001;
  config.physical.cpu_commit_mean = 0.001;
  config.physical.cpu_write_commit_mean = 0.002;
  config.physical.io_time = 0.005;
  config.physical.restart_delay_mean = 0.01;
  config.logical.db_size = 300;
  config.logical.accesses_per_txn = 6;
  config.seed = 11;
  return config;
}

TEST(GateElasticityTest, RampCapBoundsAdmissionBelowLimit) {
  sim::Simulator sim;
  db::TransactionSystem system(&sim, GateSystemConfig());
  control::AdmissionGate gate(&system, 30.0);
  gate.SetRampCap(4.0);
  EXPECT_TRUE(gate.ramping());
  EXPECT_EQ(gate.effective_limit(), 4.0);
  EXPECT_EQ(gate.limit(), 30.0);  // n* itself is untouched
  system.Start();
  int max_seen = 0;
  for (double t = 0.5; t < 6.0; t += 0.1) {
    sim.ScheduleAt(t, [&] { max_seen = std::max(max_seen, system.active()); });
  }
  sim.RunUntil(6.0);
  EXPECT_LE(max_seen, 4);
  ASSERT_GT(gate.queue_length(), 0);  // overload piled up behind the cap

  // Clearing the ramp hands control back to n*: the queue drains at once.
  sim.ScheduleAt(6.0, [&] { gate.ClearRampCap(); });
  sim.RunUntil(6.5);
  EXPECT_FALSE(gate.ramping());
  EXPECT_EQ(gate.effective_limit(), 30.0);
  EXPECT_GT(system.active(), 4);

  // A cap above n* is no cap at all.
  gate.SetRampCap(100.0);
  EXPECT_EQ(gate.effective_limit(), 30.0);
}

TEST(GateElasticityTest, FrozenGateQueuesEverythingAdmitsNothing) {
  sim::Simulator sim;
  db::TransactionSystem system(&sim, GateSystemConfig());
  control::AdmissionGate gate(&system, 10.0);
  gate.SetFrozen(true);
  system.Start();
  sim.RunUntil(3.0);
  EXPECT_EQ(system.active(), 0);
  ASSERT_GT(gate.queue_length(), 10);  // arrivals kept piling up
  sim.ScheduleAt(3.0, [&] { gate.SetFrozen(false); });
  sim.RunUntil(3.5);
  EXPECT_GT(system.active(), 5);  // unfreeze re-admits per the normal rule
}

// ---------------------------------------------------------------------------
// [elasticity] spec section: round-trip, validation, override addressing.

TEST(ElasticitySpecTest, FlashSpecRoundTripsExactly) {
  core::ExperimentSpec spec;
  std::string error;
  ASSERT_TRUE(core::LoadSpecFile(
      std::string(ALC_SOURCE_DIR) + "/specs/elasticity_flash.spec", &spec,
      &error))
      << error;
  ASSERT_TRUE(spec.elasticity.enabled);
  EXPECT_EQ(spec.elasticity.scaler, "hysteresis");
  EXPECT_EQ(spec.elasticity.standby, 2);

  core::ExperimentSpec reparsed;
  ASSERT_TRUE(core::ParseSpec(core::PrintSpec(spec), &reparsed, &error))
      << error;
  EXPECT_EQ(spec, reparsed);
  EXPECT_EQ(core::PrintSpec(spec), core::PrintSpec(reparsed));
}

TEST(ElasticitySpecTest, ValidationRejectsImpossibleConfigs) {
  const std::string base =
      "[experiment]\ncluster = true\nduration = 10\n"
      "[elasticity]\nenabled = true\n";
  core::ExperimentSpec spec;
  std::string error;

  // Standby pool as large as the fleet: nothing would remain to route to.
  EXPECT_FALSE(core::ParseSpec(base + "standby = 2\n[node]\n[node]\n", &spec,
                               &error));
  EXPECT_NE(error.find("standby"), std::string::npos);

  // A down threshold below the suspect threshold is unsatisfiable.
  EXPECT_FALSE(core::ParseSpec(
      base + "hb.suspect_after = 3\nhb.down_after = 2\n[node]\n[node]\n",
      &spec, &error));
  EXPECT_NE(error.find("down_after"), std::string::npos);

  // Unknown scaler names fail at parse time, listing the registry.
  EXPECT_FALSE(core::ParseSpec(base + "scaler = warp\n[node]\n[node]\n",
                               &spec, &error));
  EXPECT_NE(error.find("hysteresis"), std::string::npos);

  // Elasticity is a cluster-mode feature.
  EXPECT_FALSE(core::ParseSpec(
      "[experiment]\nduration = 10\n[elasticity]\nenabled = true\n[node]\n",
      &spec, &error));
  EXPECT_NE(error.find("cluster"), std::string::npos);
}

TEST(ElasticitySpecTest, OverridesAddressTheSectionAndRejectNonsense) {
  core::ExperimentSpec spec;
  std::string error;
  ASSERT_TRUE(core::LoadSpecFile(
      std::string(ALC_SOURCE_DIR) + "/specs/elasticity_flash.spec", &spec,
      &error))
      << error;

  ASSERT_TRUE(core::ApplySpecOverride(&spec, "elasticity.scaler", "pi",
                                      &error))
      << error;
  EXPECT_EQ(spec.elasticity.scaler, "pi");
  ASSERT_TRUE(core::ApplySpecOverride(&spec, "elasticity.hb.timeout", "0.2",
                                      &error))
      << error;
  EXPECT_EQ(spec.elasticity.heartbeat.timeout, 0.2);
  ASSERT_TRUE(core::ApplySpecOverride(
      &spec, "elasticity.scaler.pi.kp", "3.5", &error))
      << error;

  EXPECT_FALSE(core::ApplySpecOverride(&spec, "elasticity.bogus", "1",
                                       &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);

  // Single-node specs have no fleet to scale.
  core::ExperimentSpec single;
  ASSERT_TRUE(core::ParseSpec("[experiment]\nduration = 5\n[node]\n", &single,
                              &error))
      << error;
  EXPECT_FALSE(core::ApplySpecOverride(&single, "elasticity.enabled", "true",
                                       &error));
  EXPECT_NE(error.find("cluster"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Full-run edge cases. Small fleets, short horizons, measured membership.

/// Shared [node] calibration for the edge-case fleets (4-CPU downscale of
/// the flash-crowd spec, smaller database).
std::string NodeBlock(const std::string& extra = "") {
  return "[node]\n" + extra +
         "physical.num_cpus = 4\n"
         "physical.cpu_init_mean = 0.001\n"
         "physical.cpu_access_mean = 0.001\n"
         "physical.cpu_commit_mean = 0.001\n"
         "physical.cpu_write_commit_mean = 0.004\n"
         "physical.io_time = 0.008\n"
         "physical.restart_delay_mean = 0.02\n"
         "logical.db_size = 400\n"
         "logical.accesses_per_txn = 6\n"
         "logical.query_fraction = 0.3\n"
         "logical.write_fraction = 0.4\n"
         "control.controller = fixed\n"
         "control.initial_limit = 25\n";
}

core::SpecRunResult RunText(const std::string& text,
                            const std::string& decisions_name) {
  core::ExperimentSpec spec;
  std::string error;
  EXPECT_TRUE(core::ParseSpec(text, &spec, &error)) << error;
  spec.decisions_path = testing::TempDir() + "/" + decisions_name;
  const core::SpecRunResult result = core::RunSpec(spec);
  std::remove(spec.decisions_path.c_str());
  return result;
}

int CountReason(const std::vector<telemetry::DecisionRecord>& decisions,
                const std::string& reason) {
  int count = 0;
  for (const telemetry::DecisionRecord& record : decisions) {
    if (reason == record.reason) ++count;
  }
  return count;
}

TEST(ElasticityRunTest, RejoinDuringDetectionWindowNeverDeclares) {
  // Node 0 is in truth dead for [8, 9.5) but the detector needs 20 s of
  // misses to declare: the blip ends inside the detection window, the
  // suspicion clears, and the membership never changes. The router still
  // paid real misroutes to the dead node during the window.
  const std::string text =
      "[experiment]\n"
      "cluster = true\nseed = 7\nduration = 20\nwarmup = 2\n"
      "arrival_rate = constant(150)\nrouting = join-shortest-queue\n"
      "retraction = true\n"
      "[schedules]\nblip = avail(up; 8:down, 9.5:up)\n"
      "[elasticity]\n"
      "enabled = true\ndetector = true\n"
      "hb.interval = 0.5\nhb.timeout = 0.5\n"
      "hb.suspect_after = 1\nhb.down_after = 40\nhb.clear_after = 1\n"
      "hb.delay_base = 0.005\nhb.delay_load = 0.1\n"
      "scaler = none\nstandby = 0\nmin_live = 1\n" +
      NodeBlock("availability = $blip\nrejoin = fresh\n") + NodeBlock() +
      NodeBlock();
  const core::SpecRunResult result = RunText(text, "rejoin.decisions.csv");
  ASSERT_TRUE(result.cluster);
  const core::ClusterResult& cluster = result.cluster_result;
  EXPECT_GE(cluster.suspicions, 1u);
  EXPECT_EQ(cluster.declared_down, 0u);  // the window outlived the fault
  EXPECT_GT(cluster.misroutes, 0u);      // but the routing cost was real
  EXPECT_EQ(cluster.false_suspicions, 0u);  // the suspicion was genuine
  EXPECT_GE(CountReason(result.decisions, "suspect"), 1);
  EXPECT_GE(CountReason(result.decisions, "clear"), 1);
  EXPECT_EQ(CountReason(result.decisions, "down-confirmed"), 0);
  EXPECT_EQ(CountReason(result.decisions, "down-false"), 0);
}

TEST(ElasticityRunTest, FalseDeclarationRecoversWhenLoadDrains) {
  // Node 0 runs a fixed n* of 2: under the opening surge JSQ equalizes
  // occupancy, so node 0's occupancy/limit ratio — and with it the modeled
  // probe rtt — blows past the timeout while its peers answer in time. The
  // detector declares a perfectly healthy node down. When the surge ends
  // its occupancy drains, probes pass again, and the declaration is
  // reversed through the recover path (ForceTransition back + slow-start).
  const std::string text =
      "[experiment]\n"
      "cluster = true\nseed = 13\nduration = 24\nwarmup = 2\n"
      "arrival_rate = steps(240; 10:5)\nrouting = join-shortest-queue\n"
      "retraction = true\n"
      "[elasticity]\n"
      "enabled = true\ndetector = true\n"
      "hb.interval = 0.5\nhb.timeout = 0.012\n"
      "hb.suspect_after = 1\nhb.down_after = 3\nhb.clear_after = 2\n"
      "hb.delay_base = 0.005\nhb.delay_load = 2\n"
      "scaler = none\nstandby = 0\nmin_live = 1\n" +
      NodeBlock("control.initial_limit = 2\n") + NodeBlock() + NodeBlock();
  const core::SpecRunResult result = RunText(text, "false_pos.decisions.csv");
  ASSERT_TRUE(result.cluster);
  const core::ClusterResult& cluster = result.cluster_result;
  EXPECT_GE(cluster.false_suspicions, 1u);
  EXPECT_GE(cluster.declared_down, 1u);
  // No node was ever in truth down: every declaration was false, so no
  // real detection latency was measured and no misroutes were paid.
  EXPECT_EQ(cluster.detection_latency_mean, 0.0);
  EXPECT_EQ(cluster.misroutes, 0u);
  EXPECT_GE(CountReason(result.decisions, "down-false"), 1);
  EXPECT_GE(CountReason(result.decisions, "recover"), 1);
  EXPECT_EQ(CountReason(result.decisions, "down-confirmed"), 0);
}

TEST(ElasticityRunTest, HeartbeatLossDuringDrainStillDeclares) {
  // The scaler provisions standby node 3 for the opening surge, then
  // drains it when the load drops at t=8 and the backlog clears. The node
  // dies in truth at t=16, mid-grace: the detector (which keeps probing
  // draining nodes) declares it down from kDrain, and the pending drain
  // completion is a no-op.
  const std::string text =
      "[experiment]\n"
      "cluster = true\nseed = 21\nduration = 26\nwarmup = 2\n"
      "arrival_rate = steps(220; 8:5)\nrouting = join-shortest-queue\n"
      "retraction = true\n"
      "[schedules]\nlate_fault = avail(up; 16:down)\n"
      "[elasticity]\n"
      "enabled = true\ndetector = true\n"
      "hb.interval = 0.5\nhb.timeout = 0.5\n"
      "hb.suspect_after = 1\nhb.down_after = 4\nhb.clear_after = 2\n"
      "hb.delay_base = 0.005\nhb.delay_load = 0.1\n"
      "scaler = hysteresis\nscaler_interval = 0.5\n"
      "standby = 1\nmin_live = 3\n"
      "slow_start_initial = 4\nslow_start_duration = 4\n"
      "drain_delay = 8\n"
      "scaler.hysteresis.up_queue_factor = 0.3\n"
      "scaler.hysteresis.down_queue_factor = 0.05\n"
      "scaler.hysteresis.hold_ticks = 1\n"
      "scaler.hysteresis.cooldown = 2\n" +
      NodeBlock() + NodeBlock() + NodeBlock() +
      NodeBlock("availability = $late_fault\nrejoin = fresh\n");
  const core::SpecRunResult result = RunText(text, "drain.decisions.csv");
  ASSERT_TRUE(result.cluster);
  const core::ClusterResult& cluster = result.cluster_result;
  EXPECT_GE(cluster.provisions, 1u);
  EXPECT_GE(cluster.drains, 1u);
  EXPECT_GE(cluster.declared_down, 1u);
  EXPECT_GT(cluster.detection_latency_mean, 0.0);  // a real fault this time
  EXPECT_GE(CountReason(result.decisions, "down-confirmed"), 1);
  EXPECT_GE(CountReason(result.decisions, "overload"), 1);
  EXPECT_GE(CountReason(result.decisions, "underload"), 1);
}

TEST(ElasticityRunTest, DrainDuringSlowStartReturnsNodeToPool) {
  // The opening surge provisions standby node 3 with a deliberately long
  // slow-start (20 s, so a ramp step lands inside every 3 s window); the
  // load drops at t=6 and the scaler drains the node while its ramp is
  // still active. The abandoned ramp must not invalidate the pending
  // FinishDrain: the node has to reach kStandby, proven by the second
  // surge at t=18 provisioning it again (regression: a mid-ramp drain
  // once left the node in kDrain forever, silently shrinking the fleet).
  const std::string text =
      "[experiment]\n"
      "cluster = true\nseed = 31\nduration = 28\nwarmup = 2\n"
      "arrival_rate = steps(220; 6:5, 18:220)\n"
      "routing = join-shortest-queue\n"
      "retraction = true\n"
      "[elasticity]\n"
      "enabled = true\ndetector = true\n"
      "hb.interval = 0.5\nhb.timeout = 0.5\n"
      "hb.suspect_after = 1\nhb.down_after = 4\nhb.clear_after = 2\n"
      "hb.delay_base = 0.005\nhb.delay_load = 0.1\n"
      "scaler = hysteresis\nscaler_interval = 0.5\n"
      "standby = 1\nmin_live = 3\n"
      "slow_start_initial = 4\nslow_start_duration = 20\n"
      "drain_delay = 3\n"
      "scaler.hysteresis.up_queue_factor = 0.3\n"
      "scaler.hysteresis.down_queue_factor = 0.05\n"
      "scaler.hysteresis.hold_ticks = 1\n"
      "scaler.hysteresis.cooldown = 2\n" +
      NodeBlock() + NodeBlock() + NodeBlock() + NodeBlock();
  const core::SpecRunResult result =
      RunText(text, "drain_mid_ramp.decisions.csv");
  ASSERT_TRUE(result.cluster);
  const core::ClusterResult& cluster = result.cluster_result;
  EXPECT_GE(cluster.drains, 1u);
  // Only node 3 is ever in the pool, so a second provision is only
  // possible after the mid-ramp drain completed back to kStandby.
  EXPECT_GE(cluster.provisions, 2u);
  EXPECT_EQ(cluster.declared_down, 0u);  // nobody ever actually died
}

// ---------------------------------------------------------------------------
// Bit-determinism pins of the headline scenario.

// Captured from the run this PR landed with; re-pin only with a reason
// (see EngineDeterminismTest for the precedent).
constexpr size_t kPinnedDecisionsSize = 287648;
constexpr uint64_t kPinnedDecisionsHash = 8229236671395029721ULL;

/// FNV-1a 64-bit: stable, dependency-free content fingerprint.
uint64_t Fnv1a(const std::string& text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

core::ExperimentSpec LoadFlashSpec() {
  core::ExperimentSpec spec;
  std::string error;
  EXPECT_TRUE(core::LoadSpecFile(
      std::string(ALC_SOURCE_DIR) + "/specs/elasticity_flash.spec", &spec,
      &error))
      << error;
  return spec;
}

struct FlashArtifacts {
  std::string decisions;
  std::string cluster;
  std::string aggregate;
  uint64_t commits = 0;
};

FlashArtifacts RunFlash(bool telemetry_on, const std::string& tag) {
  core::ExperimentSpec spec = LoadFlashSpec();
  std::string error;
  if (telemetry_on) {
    spec.decisions_path = testing::TempDir() + "/flash_" + tag + ".csv";
    spec.trace_path = testing::TempDir() + "/flash_" + tag + ".trace.json";
    EXPECT_TRUE(core::ApplySpecOverride(&spec, "node.telemetry.per_phase",
                                        "true", &error))
        << error;
  }
  const core::SpecRunResult result = core::RunSpec(spec);
  EXPECT_TRUE(result.cluster);

  FlashArtifacts artifacts;
  artifacts.commits = result.cluster_result.commits;
  std::ostringstream decisions;
  telemetry::WriteDecisionsCsv(decisions, result.decisions);
  artifacts.decisions = decisions.str();
  std::vector<std::vector<core::TrajectoryPoint>> trajectories;
  std::vector<core::ClusterNodePlacementInfo> placement_info;
  for (const core::ClusterNodeResult& node : result.cluster_result.nodes) {
    trajectories.push_back(node.trajectory);
    placement_info.push_back({node.remote_frac, node.partitions_owned});
  }
  std::ostringstream cluster_csv;
  core::WriteClusterTrajectoryCsv(cluster_csv, trajectories, placement_info,
                                  result.cluster_result.membership);
  artifacts.cluster = cluster_csv.str();
  std::ostringstream aggregate_csv;
  core::WriteTrajectoryCsv(aggregate_csv, result.cluster_result.aggregate, {});
  artifacts.aggregate = aggregate_csv.str();
  if (telemetry_on) {
    std::remove(spec.decisions_path.c_str());
    std::remove(spec.trace_path.c_str());
  }
  return artifacts;
}

TEST(ElasticityDeterminismTest, FlashRunIsBitExactAndDecisionsArePinned) {
  const FlashArtifacts first = RunFlash(/*telemetry_on=*/true, "a");
  const FlashArtifacts second = RunFlash(/*telemetry_on=*/true, "b");

  // Run-to-run: byte-identical artifacts, decisions included.
  EXPECT_EQ(first.decisions, second.decisions);
  EXPECT_EQ(first.cluster, second.cluster);
  EXPECT_EQ(first.aggregate, second.aggregate);

  // Cross-build pin of the decision audit (detector verdicts + scaler
  // actions for the whole headline run). If this fails, the elasticity
  // loop's event timing or arithmetic changed — re-pin only with a reason.
  EXPECT_EQ(first.decisions.size(), kPinnedDecisionsSize);
  EXPECT_EQ(Fnv1a(first.decisions), kPinnedDecisionsHash);
}

TEST(ElasticityDeterminismTest, TelemetrytogglesAreInertOnElasticityRun) {
  // The full loop running (detector transitions, scaler provisions) with
  // the decision audit + trace + per-phase histograms attached must commit
  // the same transactions at the same ticks as the bare run.
  const FlashArtifacts on = RunFlash(/*telemetry_on=*/true, "on");
  const FlashArtifacts off = RunFlash(/*telemetry_on=*/false, "off");
  EXPECT_EQ(on.commits, off.commits);
  EXPECT_EQ(on.cluster, off.cluster);
  EXPECT_EQ(on.aggregate, off.aggregate);
  // The audited run actually recorded decisions; the bare run recorded
  // none (no decisions_path) — observation, not participation.
  EXPECT_FALSE(on.decisions.empty());
  EXPECT_GT(on.decisions.size(), off.decisions.size());
}

}  // namespace
}  // namespace alc
