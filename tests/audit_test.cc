// Decision audit trail: ring semantics, CSV contract, summary math, the
// observation-only pin (audit-on vs audit-off runs of the failover spec are
// byte-identical), and the end-to-end guarantee that a parabola run's
// decisions.csv reproduces the controller's actual limit trajectory with
// finite fitted coefficients and known reason codes.

#include "telemetry/audit.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/export.h"
#include "core/spec.h"
#include "db/schedule.h"

namespace alc {
namespace {

telemetry::DecisionRecord MakeRecord(double time, int node,
                                     const char* controller, double old_limit,
                                     double new_limit) {
  telemetry::DecisionRecord record;
  record.time = time;
  record.node = node;
  record.controller = controller;
  record.reason = "test";
  record.old_limit = old_limit;
  record.new_limit = new_limit;
  return record;
}

// ------------------------------------------------------------------ ring --

TEST(DecisionAuditTest, BelowCapacityKeepsEverythingInOrder) {
  telemetry::DecisionAudit audit(8);
  for (int i = 0; i < 5; ++i) {
    audit.Record(MakeRecord(i, 0, "c", i, i + 1));
  }
  EXPECT_EQ(audit.size(), 5u);
  EXPECT_EQ(audit.dropped(), 0u);
  const std::vector<telemetry::DecisionRecord> records = audit.InOrder();
  ASSERT_EQ(records.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(records[static_cast<size_t>(i)].time, i);
  }
}

TEST(DecisionAuditTest, AtCapacityOverwritesOldestAndCountsDrops) {
  telemetry::DecisionAudit audit(4);
  for (int i = 0; i < 10; ++i) {
    audit.Record(MakeRecord(i, 0, "c", i, i + 1));
  }
  EXPECT_EQ(audit.size(), 4u);
  EXPECT_EQ(audit.capacity(), 4u);
  EXPECT_EQ(audit.dropped(), 6u);
  // The retained window is the most recent 4, chronological.
  const std::vector<telemetry::DecisionRecord> records = audit.InOrder();
  ASSERT_EQ(records.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(records[static_cast<size_t>(i)].time, 6 + i);
  }
}

TEST(DecisionAuditTest, ClearResetsRingAndDropCount) {
  telemetry::DecisionAudit audit(2);
  for (int i = 0; i < 5; ++i) audit.Record(MakeRecord(i, 0, "c", 0, 0));
  audit.Clear();
  EXPECT_EQ(audit.size(), 0u);
  EXPECT_EQ(audit.dropped(), 0u);
  EXPECT_TRUE(audit.InOrder().empty());
  audit.Record(MakeRecord(9, 0, "c", 0, 0));
  EXPECT_EQ(audit.InOrder().size(), 1u);
}

// ------------------------------------------------------------------- csv --

TEST(DecisionCsvTest, HeaderIsTheDocumentedContract) {
  std::ostringstream out;
  telemetry::WriteDecisionsCsv(out, {});
  EXPECT_EQ(out.str(),
            "time,node,controller,reason,old_limit,new_limit,throughput,"
            "conflict_rate,gate_queue,mean_active,s0_key,s0,s1_key,s1,"
            "s2_key,s2,s3_key,s3\n");
}

TEST(DecisionCsvTest, RowCarriesStateSlotsAndEmptySlotsAreBlank) {
  telemetry::DecisionRecord record = MakeRecord(1.5, 2, "parabola", 20, 22.5);
  record.reason = "vertex";
  record.throughput = 100.25;
  record.num_state = 2;
  record.state_names[0] = "a0";
  record.state_values[0] = -3.5;
  record.state_names[1] = "a1";
  record.state_values[1] = 0.125;
  std::ostringstream out;
  telemetry::WriteDecisionsCsv(out, {record});
  const std::string text = out.str();
  EXPECT_NE(text.find("\n1.5,2,parabola,vertex,20,22.5,100.25,"),
            std::string::npos);
  EXPECT_NE(text.find("a0,-3.5,a1,0.125,,0,,0\n"), std::string::npos);
}

// --------------------------------------------------------------- summary --

TEST(DecisionSummaryTest, CountsStepsAndDirectionChangesPerController) {
  std::vector<telemetry::DecisionRecord> records;
  // Controller "a", node 0: up 2, up 1, down 3, down 1, up 2 -> two flips.
  const double limits_a[] = {10, 12, 13, 10, 9, 11};
  for (int i = 0; i + 1 < 6; ++i) {
    records.push_back(MakeRecord(i, 0, "a", limits_a[i], limits_a[i + 1]));
  }
  // Controller "b": one zero-step then one move: no direction change.
  records.push_back(MakeRecord(0, 0, "b", 5, 5));
  records.push_back(MakeRecord(1, 0, "b", 5, 7));

  const std::vector<telemetry::DecisionSummary> summaries =
      telemetry::SummarizeDecisions(records);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].controller, "a");
  EXPECT_EQ(summaries[0].decisions, 5u);
  EXPECT_EQ(summaries[0].direction_changes, 2u);
  EXPECT_DOUBLE_EQ(summaries[0].mean_abs_step, (2 + 1 + 3 + 1 + 2) / 5.0);
  EXPECT_EQ(summaries[1].controller, "b");
  EXPECT_EQ(summaries[1].decisions, 2u);
  EXPECT_EQ(summaries[1].direction_changes, 0u);
  EXPECT_DOUBLE_EQ(summaries[1].mean_abs_step, 1.0);
}

TEST(DecisionSummaryTest, DirectionChangesAreTrackedPerNodeStream) {
  // Interleaved per-node streams that each move monotonically must report
  // zero flips even though the merged sequence alternates sign.
  std::vector<telemetry::DecisionRecord> records;
  records.push_back(MakeRecord(0, 0, "c", 10, 12));
  records.push_back(MakeRecord(0, 1, "c", 30, 28));
  records.push_back(MakeRecord(1, 0, "c", 12, 14));
  records.push_back(MakeRecord(1, 1, "c", 28, 26));
  const std::vector<telemetry::DecisionSummary> summaries =
      telemetry::SummarizeDecisions(records);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].direction_changes, 0u);
}

// ----------------------------------------------- observation-only pin --

struct CsvArtifacts {
  std::string cluster;
  std::string aggregate;
};

CsvArtifacts RunAndExport(const core::ExperimentSpec& spec) {
  const core::SpecRunResult result = core::RunSpec(spec);
  EXPECT_TRUE(result.cluster);
  const core::ClusterResult& cluster = result.cluster_result;
  std::vector<std::vector<core::TrajectoryPoint>> trajectories;
  std::vector<core::ClusterNodePlacementInfo> placement_info;
  for (const core::ClusterNodeResult& node : cluster.nodes) {
    trajectories.push_back(node.trajectory);
    placement_info.push_back({node.remote_frac, node.partitions_owned});
  }
  CsvArtifacts artifacts;
  std::ostringstream cluster_csv;
  core::WriteClusterTrajectoryCsv(cluster_csv, trajectories, placement_info,
                                  cluster.membership);
  artifacts.cluster = cluster_csv.str();
  std::ostringstream aggregate_csv;
  core::WriteTrajectoryCsv(aggregate_csv, cluster.aggregate, {});
  artifacts.aggregate = aggregate_csv.str();
  return artifacts;
}

TEST(DecisionAuditPerturbationTest, AuditedFailoverRunIsByteIdentical) {
  core::ExperimentSpec spec;
  std::string error;
  ASSERT_TRUE(core::LoadSpecFile(
      std::string(ALC_SOURCE_DIR) + "/specs/node_failover.spec", &spec,
      &error))
      << error;

  core::ExperimentSpec off = spec;
  off.decisions_path.clear();

  core::ExperimentSpec on = spec;
  on.decisions_path = testing::TempDir() + "/audit_perturbation_decisions.csv";

  const CsvArtifacts off_csv = RunAndExport(off);
  const CsvArtifacts on_csv = RunAndExport(on);
  EXPECT_EQ(off_csv.cluster, on_csv.cluster);
  EXPECT_EQ(off_csv.aggregate, on_csv.aggregate);

  // The audited run actually produced a non-trivial trail.
  std::ifstream decisions(on.decisions_path);
  ASSERT_TRUE(decisions.good());
  std::string header;
  ASSERT_TRUE(std::getline(decisions, header));
  EXPECT_EQ(header.substr(0, 20), "time,node,controller");
  int rows = 0;
  std::string line;
  while (std::getline(decisions, line)) ++rows;
  EXPECT_GT(rows, 0);
  std::remove(on.decisions_path.c_str());
}

// --------------------------------------------- end-to-end parabola run --

core::ExperimentSpec SingleNodeParabolaSpec() {
  core::ExperimentSpec spec;
  spec.name = "audit-parabola";
  spec.cluster = false;
  spec.seed = 11;
  spec.duration = 60.0;
  spec.warmup = 5.0;
  spec.nodes.resize(1);
  core::NodeSpec& node = spec.nodes[0];
  node.system.seed = 11;
  node.system.physical.num_cpus = 4;
  node.system.logical.db_size = 600;
  node.system.logical.accesses_per_txn = 8;
  node.dynamics.k = db::Schedule::Constant(60);
  node.control.controller = "parabola-approximation";
  node.control.measurement_interval = 0.5;
  node.control.initial_limit = 20.0;
  node.control.params.SetDouble("pa.initial_bound", 20.0);
  node.control.params.SetDouble("pa.max_bound", 200.0);
  return spec;
}

TEST(DecisionAuditEndToEndTest, ParabolaDecisionsMatchTrajectory) {
  core::ExperimentSpec spec = SingleNodeParabolaSpec();
  spec.decisions_path = testing::TempDir() + "/audit_parabola_decisions.csv";
  const core::SpecRunResult result = core::RunSpec(spec);
  ASSERT_FALSE(result.cluster);
  EXPECT_EQ(result.decisions_dropped, 0u);

  // One decision per monitor tick, and the recorded limit moves are exactly
  // the bound trajectory the run exported.
  ASSERT_EQ(result.decisions.size(), result.single.trajectory.size());
  for (size_t i = 0; i < result.decisions.size(); ++i) {
    const telemetry::DecisionRecord& d = result.decisions[i];
    const core::TrajectoryPoint& p = result.single.trajectory[i];
    EXPECT_DOUBLE_EQ(d.time, p.time);
    EXPECT_DOUBLE_EQ(d.new_limit, p.bound);
    EXPECT_EQ(d.node, 0);
    EXPECT_STREQ(d.controller, "parabola-approximation");
    if (i > 0) {
      EXPECT_DOUBLE_EQ(d.old_limit, result.decisions[i - 1].new_limit);
    }
  }

  // Reasons come from the parabola controller's documented set, and once
  // warmed up the fitted coefficients are finite and self-describing.
  const std::set<std::string> known = {"warmup",          "vertex",
                                      "recovery-hold",   "recovery-gradient",
                                      "recovery-contract", "recovery-reset"};
  bool saw_fit = false;
  for (const telemetry::DecisionRecord& d : result.decisions) {
    EXPECT_TRUE(known.count(d.reason)) << d.reason;
    if (std::string(d.reason) != "warmup") {
      ASSERT_EQ(d.num_state, 4);
      EXPECT_STREQ(d.state_names[0], "a0");
      EXPECT_STREQ(d.state_names[1], "a1");
      EXPECT_STREQ(d.state_names[2], "a2");
      EXPECT_STREQ(d.state_names[3], "excitation");
      for (int s = 0; s < d.num_state; ++s) {
        EXPECT_TRUE(std::isfinite(d.state_values[s]));
      }
      saw_fit = true;
    }
  }
  EXPECT_TRUE(saw_fit);

  // The exported CSV round-trips the same trail: one row per decision.
  std::ifstream csv(spec.decisions_path);
  ASSERT_TRUE(csv.good());
  std::string line;
  ASSERT_TRUE(std::getline(csv, line));  // header
  size_t rows = 0;
  while (std::getline(csv, line)) ++rows;
  EXPECT_EQ(rows, result.decisions.size());
  std::remove(spec.decisions_path.c_str());
}

}  // namespace
}  // namespace alc
