// Remaining coverage: logging, simulator cancellation corner cases, lock
// manager cascade interactions, and monitor accounting details not covered
// by the module-focused suites.

#include <gtest/gtest.h>

#include "control/monitor.h"
#include "db/database.h"
#include "db/metrics.h"
#include "db/system.h"
#include "db/two_phase_locking.h"
#include "sim/simulator.h"
#include "util/logging.h"

namespace alc {
namespace {

TEST(LoggingTest, LevelFiltering) {
  const util::LogLevel original = util::Logger::level();
  util::Logger::SetLevel(util::LogLevel::kError);
  EXPECT_EQ(util::Logger::level(), util::LogLevel::kError);
  // Below-threshold logs are ignored (no crash, no output assertions
  // possible on stderr without capturing; this exercises the path).
  ALC_LOG(kDebug, "should be filtered");
  ALC_LOG(kError, "visible error message");
  util::Logger::SetLevel(util::LogLevel::kOff);
  ALC_LOG(kError, "filtered even at error level");
  util::Logger::SetLevel(original);
}

TEST(SimulatorTest, CancelDuringEventExecution) {
  // An event callback cancels a later event: the later event must not run.
  sim::Simulator sim;
  bool late_ran = false;
  sim::EventHandle late = sim.Schedule(2.0, [&] { late_ran = true; });
  sim.Schedule(1.0, [&] { EXPECT_TRUE(sim.Cancel(late)); });
  sim.RunAll();
  EXPECT_FALSE(late_ran);
}

TEST(SimulatorTest, SelfReschedulingEventChain) {
  sim::Simulator sim;
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 5) sim.Schedule(1.0, tick);
  };
  sim.Schedule(1.0, tick);
  sim.RunAll();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
}

class LockCascadeTest : public ::testing::Test {
 protected:
  LockCascadeTest() : db_(20), lm_(&db_, &metrics_, &sim_) {
    metrics_.blocked_track.Start(0.0, 0.0);
    lm_.SetAbortHook([this](db::Transaction* txn, db::AbortReason) {
      aborted_.push_back(txn);
      lm_.OnAbort(txn);
    });
  }

  db::Transaction Make(db::TxnId id, double start) {
    db::Transaction txn;
    txn.id = id;
    txn.attempt_start_time = start;
    txn.state = db::TxnState::kRunning;
    return txn;
  }

  sim::Simulator sim_;
  db::Database db_;
  db::Metrics metrics_;
  db::LockManager lm_;
  std::vector<db::Transaction*> aborted_;
};

TEST_F(LockCascadeTest, VictimReleaseUnblocksMultipleQueues) {
  // The victim holds two items with waiters on both; aborting it must
  // grant both queues.
  db::Transaction victim = Make(1, 9.0);  // youngest
  db::Transaction blocker = Make(2, 1.0);
  db::Transaction w1 = Make(3, 2.0), w2 = Make(4, 3.0);
  victim.access_items = {5, 6, 7};
  victim.access_modes = {db::AccessMode::kWrite, db::AccessMode::kWrite,
                         db::AccessMode::kWrite};
  blocker.access_items = {8, 5};
  blocker.access_modes = {db::AccessMode::kWrite, db::AccessMode::kWrite};
  w1.access_items = {6};
  w1.access_modes = {db::AccessMode::kWrite};
  w2.access_items = {7};
  w2.access_modes = {db::AccessMode::kWrite};

  bool v0 = false, v1 = false, v2 = false, b0 = false;
  bool g1 = false, g2 = false;
  lm_.RequestAccess(&victim, 0, [&] { v0 = true; });   // holds 5
  lm_.RequestAccess(&victim, 1, [&] { v1 = true; });   // holds 6
  lm_.RequestAccess(&victim, 2, [&] { v2 = true; });   // holds 7
  lm_.RequestAccess(&blocker, 0, [&] { b0 = true; });  // holds 8
  lm_.RequestAccess(&w1, 0, [&] { g1 = true; });       // waits on 6
  lm_.RequestAccess(&w2, 0, [&] { g2 = true; });       // waits on 7
  ASSERT_TRUE(v0 && v1 && v2 && b0);
  EXPECT_EQ(lm_.num_blocked(), 2);

  // victim -> blocker (wants 8); blocker -> victim (wants 5): deadlock on
  // the second edge; victim is younger and gets aborted.
  victim.access_items.push_back(8);
  victim.access_modes.push_back(db::AccessMode::kWrite);
  bool v3 = false;
  lm_.RequestAccess(&victim, 3, [&] { v3 = true; });
  EXPECT_FALSE(v3);
  bool b2 = false;
  lm_.RequestAccess(&blocker, 1, [&] { b2 = true; });  // closes the cycle
  ASSERT_EQ(aborted_.size(), 1u);
  EXPECT_EQ(aborted_[0], &victim);

  sim_.RunAll();
  EXPECT_TRUE(g1);  // waiter on 6 granted
  EXPECT_TRUE(g2);  // waiter on 7 granted
  EXPECT_TRUE(b2);  // blocker got 5
  EXPECT_EQ(lm_.num_blocked(), 0);
}

TEST(MonitorAccountingTest, CpuUtilizationMatchesBusyTime) {
  sim::Simulator sim;
  db::SystemConfig config;
  config.physical.num_terminals = 20;
  config.physical.think_time_mean = 0.1;
  config.physical.num_cpus = 2;
  config.physical.cpu_access_mean = 0.002;
  config.physical.io_time = 0.003;
  config.logical.db_size = 500;
  config.logical.accesses_per_txn = 5;
  config.seed = 11;
  db::TransactionSystem system(&sim, config);
  control::Monitor monitor(&sim, &system, 1.0);
  double util_sum = 0.0;
  int samples = 0;
  monitor.SetCallback([&](const control::Sample& sample) {
    util_sum += sample.cpu_utilization;
    ++samples;
  });
  system.Start();
  monitor.Start();
  sim.RunUntil(20.0);
  ASSERT_EQ(samples, 20);
  // Mean of interval utilizations == overall utilization (equal intervals).
  EXPECT_NEAR(util_sum / samples, system.cpu().Utilization(), 0.01);
}

TEST(MonitorAccountingTest, ResponseTimeDeltasConsistent) {
  sim::Simulator sim;
  db::SystemConfig config;
  config.physical.num_terminals = 15;
  config.physical.think_time_mean = 0.1;
  config.logical.db_size = 300;
  config.logical.accesses_per_txn = 4;
  config.seed = 13;
  db::TransactionSystem system(&sim, config);
  control::Monitor monitor(&sim, &system, 1.0);
  double weighted_response = 0.0;
  long long total_commits = 0;
  monitor.SetCallback([&](const control::Sample& sample) {
    weighted_response += sample.mean_response * sample.commits;
    total_commits += sample.commits;
  });
  system.Start();
  monitor.Start();
  sim.RunUntil(30.0);
  // Commit-weighted interval responses must reassemble the cumulative sum.
  EXPECT_NEAR(weighted_response,
              system.metrics().counters.response_time_sum,
              system.metrics().counters.response_time_sum * 0.05 + 1.0);
  EXPECT_LE(static_cast<uint64_t>(total_commits),
            system.metrics().counters.commits);
}

TEST(DatabaseSeqTest, WriteSeqIndependentPerItem) {
  db::Database database(5);
  database.set_last_write_seq(0, 10);
  database.set_last_write_seq(4, 20);
  EXPECT_EQ(database.last_write_seq(0), 10u);
  EXPECT_EQ(database.last_write_seq(1), 0u);
  EXPECT_EQ(database.last_write_seq(4), 20u);
}

}  // namespace
}  // namespace alc
