// Telemetry must observe, never perturb: running the same spec with every
// telemetry feature off and with everything on (per-phase histograms +
// trace recording) must produce byte-identical CSV artifacts. The response
// histogram feeding the percentile columns is always on precisely so this
// holds — it draws no random numbers and schedules no events, and neither
// does the trace recorder.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/export.h"
#include "core/spec.h"

namespace alc {
namespace {

struct CsvArtifacts {
  std::string cluster;
  std::string aggregate;
};

CsvArtifacts RunAndExport(const core::ExperimentSpec& spec) {
  const core::SpecRunResult result = core::RunSpec(spec);
  EXPECT_TRUE(result.cluster);
  const core::ClusterResult& cluster = result.cluster_result;
  std::vector<std::vector<core::TrajectoryPoint>> trajectories;
  std::vector<core::ClusterNodePlacementInfo> placement_info;
  for (const core::ClusterNodeResult& node : cluster.nodes) {
    trajectories.push_back(node.trajectory);
    placement_info.push_back({node.remote_frac, node.partitions_owned});
  }
  CsvArtifacts artifacts;
  std::ostringstream cluster_csv;
  core::WriteClusterTrajectoryCsv(cluster_csv, trajectories, placement_info,
                                  cluster.membership);
  artifacts.cluster = cluster_csv.str();
  std::ostringstream aggregate_csv;
  core::WriteTrajectoryCsv(aggregate_csv, cluster.aggregate, {});
  artifacts.aggregate = aggregate_csv.str();
  return artifacts;
}

TEST(TelemetryPerturbationTest, TelemetryTogglesDoNotChangeResults) {
  core::ExperimentSpec spec;
  std::string error;
  ASSERT_TRUE(core::LoadSpecFile(
      std::string(ALC_SOURCE_DIR) + "/specs/node_failover.spec", &spec,
      &error))
      << error;

  // Everything off: no per-phase histograms, no trace.
  core::ExperimentSpec off = spec;
  ASSERT_TRUE(core::ApplySpecOverride(&off, "node.telemetry.per_phase",
                                      "false", &error))
      << error;
  off.trace_path.clear();

  // Everything on: per-phase histograms and a full trace recording.
  const std::string trace_path =
      testing::TempDir() + "/telemetry_perturbation_trace.json";
  core::ExperimentSpec on = spec;
  ASSERT_TRUE(core::ApplySpecOverride(&on, "node.telemetry.per_phase",
                                      "true", &error))
      << error;
  on.trace_path = trace_path;

  const CsvArtifacts off_csv = RunAndExport(off);
  const CsvArtifacts on_csv = RunAndExport(on);

  // Byte-identical artifacts — including the percentile columns, which come
  // from the always-on response histogram.
  EXPECT_EQ(off_csv.cluster, on_csv.cluster);
  EXPECT_EQ(off_csv.aggregate, on_csv.aggregate);

  // The traced run actually recorded something.
  std::ifstream trace(trace_path);
  ASSERT_TRUE(trace.good());
  std::ostringstream trace_text;
  trace_text << trace.rdbuf();
  EXPECT_NE(trace_text.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_text.str().find("node_down"), std::string::npos);
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace alc
