// Workload subsystem: distribution literals (round trip, domain
// validation, statistical pins against the analytic mean), the [workload]
// spec section (round trip, line-numbered errors, cluster-mode
// requirement), SessionWorkload mechanics against a scripted host, and the
// acceptance properties of the session sources — bit-determinism across
// repeats and byte-identical results with telemetry on vs off.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/export.h"
#include "core/spec.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "telemetry/registry.h"
#include "workload/distribution.h"
#include "workload/registry.h"
#include "workload/session.h"
#include "workload/source.h"

namespace alc {
namespace {

// ------------------------------------------------- distribution literals --

TEST(DistributionTest, RoundTripsEveryKind) {
  const workload::Distribution kinds[] = {
      workload::Distribution::Constant(4.0),
      workload::Distribution::Exponential(1.5),
      workload::Distribution::LogNormal(0.25, 1.2),
      workload::Distribution::BoundedPareto(1.5, 1.0, 1000.0),
      // Awkward doubles must survive exactly (FormatDouble round trip).
      workload::Distribution::LogNormal(0.1, 1.0 / 3.0),
      workload::Distribution::BoundedPareto(1.0000001, 0.5, 12345.678),
  };
  for (const workload::Distribution& d : kinds) {
    workload::Distribution parsed;
    ASSERT_TRUE(workload::Distribution::Parse(d.ToString(), &parsed))
        << d.ToString();
    EXPECT_EQ(parsed, d) << d.ToString();
    EXPECT_EQ(parsed.ToString(), d.ToString());
  }
}

TEST(DistributionTest, ParsesHandWrittenForms) {
  workload::Distribution d;
  ASSERT_TRUE(workload::Distribution::Parse("  pareto( 1.5 , 1, 1000 ) ", &d));
  EXPECT_EQ(d, workload::Distribution::BoundedPareto(1.5, 1.0, 1000.0));
  ASSERT_TRUE(workload::Distribution::Parse("exp(2)", &d));
  EXPECT_EQ(d, workload::Distribution::Exponential(2.0));
}

TEST(DistributionTest, RejectsMalformedAndOutOfDomain) {
  const char* bad[] = {
      "",
      "pareto",
      "pareto(1.5, 1)",            // missing hi
      "pareto(1.5, 1, 1000",       // unbalanced
      "pareto(0, 1, 1000)",        // alpha <= 0
      "pareto(1.5, 0, 1000)",      // lo <= 0
      "pareto(1.5, 1000, 1)",      // lo >= hi
      "exp(0)",                    // mean <= 0
      "exp(-1)",
      "lognormal(0)",              // missing sigma
      "lognormal(0, -0.5)",        // sigma < 0
      "gaussian(0, 1)",            // unknown kind
      "constant(x)",               // not a number
  };
  for (const char* text : bad) {
    workload::Distribution d = workload::Distribution::Constant(7.0);
    EXPECT_FALSE(workload::Distribution::Parse(text, &d)) << text;
    // A failed parse leaves the output untouched.
    EXPECT_EQ(d, workload::Distribution::Constant(7.0)) << text;
  }
}

// Statistical pin: with a fixed seed, the sample mean of each kind must
// land within a small tolerance of the analytic mean. Guards both the
// sampler (inverse CDF) and Mean() against silent formula drift.
double SampleMean(const workload::Distribution& d, int n, uint64_t seed) {
  sim::RandomStream rng(seed);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += d.Sample(&rng);
  return sum / n;
}

TEST(DistributionTest, SampleMeanMatchesAnalyticMean) {
  constexpr int kSamples = 200000;
  struct Case {
    workload::Distribution dist;
    double tolerance;  // relative
  };
  const Case cases[] = {
      {workload::Distribution::Constant(3.5), 1e-12},
      {workload::Distribution::Exponential(2.0), 0.02},
      {workload::Distribution::LogNormal(0.5, 0.75), 0.02},
      {workload::Distribution::BoundedPareto(1.5, 1.0, 1000.0), 0.02},
      // alpha == 1 takes the logarithmic mean formula branch.
      {workload::Distribution::BoundedPareto(1.0, 1.0, 1000.0), 0.02},
      // alpha < 1: only bounded Pareto keeps this mean finite.
      {workload::Distribution::BoundedPareto(0.8, 1.0, 100.0), 0.02},
  };
  for (const Case& c : cases) {
    const double mean = c.dist.Mean();
    const double sample = SampleMean(c.dist, kSamples, 12345);
    EXPECT_NEAR(sample / mean, 1.0, c.tolerance) << c.dist.ToString()
        << " analytic=" << mean << " sample=" << sample;
  }
}

TEST(DistributionTest, SamplingIsDeterministicPerSeed) {
  const workload::Distribution d =
      workload::Distribution::BoundedPareto(1.5, 1.0, 1000.0);
  sim::RandomStream a(99), b(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(d.Sample(&a), d.Sample(&b));
  }
}

TEST(DistributionTest, BoundedParetoStaysInBounds) {
  const workload::Distribution d =
      workload::Distribution::BoundedPareto(0.9, 2.0, 50.0);
  sim::RandomStream rng(7);
  for (int i = 0; i < 20000; ++i) {
    const double x = d.Sample(&rng);
    ASSERT_GE(x, 2.0);
    ASSERT_LE(x, 50.0);
  }
}

// ------------------------------------------------- [workload] spec layer --

core::ExperimentSpec SessionClusterSpec(const std::string& source) {
  core::ExperimentSpec spec;
  spec.name = "workload-test";
  spec.cluster = true;
  spec.seed = 17;
  spec.duration = 12.0;
  spec.warmup = 2.0;
  spec.arrival_rate = db::Schedule::Constant(120.0);
  spec.workload.source = source;
  spec.workload.population = 50000;
  spec.workload.session_rate = db::Schedule::Constant(15.0);
  spec.workload.sessions = 40;
  spec.workload.txns_per_session =
      workload::Distribution::BoundedPareto(1.5, 1.0, 200.0);
  spec.workload.think_time = workload::Distribution::Exponential(0.4);
  spec.workload.affinity = 0.8;
  spec.workload.affinity_keys = 32;
  spec.nodes.resize(2);
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    core::NodeSpec& node = spec.nodes[i];
    node.system.seed = core::DecorrelatedNodeSeed(17, static_cast<int>(i));
    node.system.physical.num_cpus = 4;
    node.system.logical.db_size = 600;
    node.system.logical.accesses_per_txn = 8;
    node.dynamics.k = db::Schedule::Constant(8);
    node.control.measurement_interval = 0.5;
    node.control.initial_limit = 20.0;
    node.control.params.SetDouble("pa.initial_bound", 20.0);
    node.control.params.SetDouble("pa.max_bound", 200.0);
  }
  return spec;
}

TEST(WorkloadSpecTest, SectionRoundTrips) {
  const core::ExperimentSpec spec = SessionClusterSpec("hybrid");
  const std::string text = core::PrintSpec(spec);
  EXPECT_NE(text.find("[workload]"), std::string::npos);
  EXPECT_NE(text.find("txns_per_session = pareto(1.5, 1, 200)"),
            std::string::npos)
      << text;
  core::ExperimentSpec parsed;
  std::string error;
  ASSERT_TRUE(core::ParseSpec(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed, spec);
}

TEST(WorkloadSpecTest, DefaultsReproduceTheOpenSource) {
  // A spec that never mentions [workload] must parse to the default open
  // source, so every pre-existing spec file keeps its exact meaning.
  core::ExperimentSpec parsed;
  std::string error;
  ASSERT_TRUE(core::ParseSpec(
      "[experiment]\ncluster = true\n[node]\n", &parsed, &error))
      << error;
  EXPECT_EQ(parsed.workload, workload::WorkloadSpec{});
  EXPECT_EQ(parsed.workload.source, "open");
}

TEST(WorkloadSpecTest, ReportsBadKeysWithLineNumbers) {
  core::ExperimentSpec parsed;
  std::string error;
  EXPECT_FALSE(core::ParseSpec(
      "[workload]\nbogus_key = 3\n", &parsed, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("bogus_key"), std::string::npos) << error;

  error.clear();
  EXPECT_FALSE(core::ParseSpec(
      "[workload]\n\ntxns_per_session = pareto(1.5, 1)\n", &parsed, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;

  error.clear();
  EXPECT_FALSE(core::ParseSpec(
      "[workload]\nsource = firehose\n", &parsed, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  // Unknown source names list what is registered.
  EXPECT_NE(error.find("hybrid"), std::string::npos) << error;
}

TEST(WorkloadSpecTest, SessionSourcesRequireClusterMode) {
  core::ExperimentSpec parsed;
  std::string error;
  EXPECT_FALSE(core::ParseSpec(
      "[experiment]\ncluster = false\n[workload]\nsource = hybrid\n[node]\n",
      &parsed, &error));
  EXPECT_NE(error.find("cluster"), std::string::npos) << error;

  // The override path enforces the same rule.
  core::ExperimentSpec single;
  ASSERT_TRUE(core::ParseSpec("[experiment]\n[node]\n", &single, &error))
      << error;
  EXPECT_FALSE(
      core::ApplySpecOverride(&single, "workload.source", "hybrid", &error));
}

TEST(WorkloadSpecTest, OverridesAddressWorkloadKeys) {
  core::ExperimentSpec spec = SessionClusterSpec("hybrid");
  std::string error;
  ASSERT_TRUE(core::ApplySpecOverride(&spec, "workload.population", "123456",
                                      &error))
      << error;
  EXPECT_EQ(spec.workload.population, 123456u);
  ASSERT_TRUE(core::ApplySpecOverride(&spec, "workload.think_time",
                                      "lognormal(0.1, 0.9)", &error))
      << error;
  EXPECT_EQ(spec.workload.think_time,
            workload::Distribution::LogNormal(0.1, 0.9));
  EXPECT_FALSE(
      core::ApplySpecOverride(&spec, "workload.affinity", "1.5", &error));
}

// ------------------------------------------ SessionWorkload unit behavior --

// Scripted host: completes every arrival after a fixed service delay and
// records what it saw. Exercises session mechanics without a cluster.
class ScriptedHost : public workload::WorkloadHost {
 public:
  ScriptedHost(sim::Simulator* sim, workload::WorkloadSource* source,
               double service_time, uint32_t keyspace)
      : sim_(sim), source_(source), service_time_(service_time),
        keyspace_(keyspace) {}

  void SubmitArrival(const workload::Arrival& arrival) override {
    ++arrivals_;
    if (arrival.affinity_size > 0) {
      ++affine_arrivals_;
      EXPECT_LE(arrival.affinity_start + arrival.affinity_size, keyspace_);
    }
    const int32_t session = arrival.session;
    if (session >= 0) {
      sim_->Schedule(service_time_, [this, session] {
        source_->OnComplete(session, service_time_, true);
      });
    }
  }
  uint32_t keyspace() const override { return keyspace_; }

  uint64_t arrivals() const { return arrivals_; }
  uint64_t affine_arrivals() const { return affine_arrivals_; }

 private:
  sim::Simulator* sim_;
  workload::WorkloadSource* source_;
  double service_time_;
  uint32_t keyspace_;
  uint64_t arrivals_ = 0;
  uint64_t affine_arrivals_ = 0;
};

workload::WorkloadSpec SmallSessionSpec() {
  workload::WorkloadSpec spec;
  spec.population = 10000;
  spec.session_rate = db::Schedule::Constant(8.0);
  spec.sessions = 12;
  spec.txns_per_session = workload::Distribution::BoundedPareto(1.5, 1.0, 50.0);
  spec.think_time = workload::Distribution::Exponential(0.3);
  spec.affinity = 1.0;
  spec.affinity_keys = 16;
  return spec;
}

TEST(SessionWorkloadTest, ClosedModeKeepsPopulationConstant) {
  sim::Simulator sim;
  workload::SessionWorkload source(workload::SessionWorkload::Mode::kClosed,
                                   SmallSessionSpec(), 5);
  ScriptedHost host(&sim, &source, 0.05, 1024);
  source.Start(&sim, &host);
  sim.RunUntil(60.0);

  EXPECT_EQ(source.sessions_started(), 12u);
  EXPECT_EQ(source.sessions_completed(), 0u);  // closed sessions never leave
  EXPECT_DOUBLE_EQ(source.active_sessions(), 12.0);
  EXPECT_GT(source.requests_ok(), 12u * 10u);  // all slots kept cycling
  EXPECT_EQ(source.requests_failed(), 0u);
  // Every arrival either completed or is still in flight at the horizon
  // (at most one outstanding request per closed session).
  EXPECT_GE(host.arrivals(), source.requests_ok());
  EXPECT_LE(host.arrivals() - source.requests_ok(), 12u);
  // affinity = 1: every arrival carries a key range.
  EXPECT_EQ(host.affine_arrivals(), host.arrivals());
}

TEST(SessionWorkloadTest, HybridSessionsArriveWorkAndLeave) {
  sim::Simulator sim;
  workload::SessionWorkload source(workload::SessionWorkload::Mode::kHybrid,
                                   SmallSessionSpec(), 5);
  ScriptedHost host(&sim, &source, 0.05, 1024);
  source.Start(&sim, &host);
  sim.RunUntil(120.0);

  EXPECT_GT(source.sessions_started(), 100u);
  EXPECT_GT(source.sessions_completed(), 100u);
  EXPECT_GE(source.sessions_started(), source.sessions_completed());
  // Accounting invariant: active = started - completed.
  EXPECT_DOUBLE_EQ(
      source.active_sessions(),
      static_cast<double>(source.sessions_started() -
                          source.sessions_completed()));
  // Arrivals not yet completed at the horizon stay in flight.
  EXPECT_GE(host.arrivals(), source.requests_ok() + source.requests_failed());
  EXPECT_EQ(source.response_histogram().count(), source.requests_ok());
}

TEST(SessionWorkloadTest, FailedCompletionsEndSessionsToo) {
  // A host that fails every 3rd submission; sessions must still terminate
  // and the started/completed/active books must still balance.
  class FlakyHost : public workload::WorkloadHost {
   public:
    FlakyHost(sim::Simulator* sim, workload::WorkloadSource** source)
        : sim_(sim), source_(source) {}
    void SubmitArrival(const workload::Arrival& arrival) override {
      const int32_t session = arrival.session;
      const bool ok = (++count_ % 3) != 0;
      sim_->Schedule(0.02, [this, session, ok] {
        (*source_)->OnComplete(session, 0.02, ok);
      });
    }
    uint32_t keyspace() const override { return 0; }

   private:
    sim::Simulator* sim_;
    workload::WorkloadSource** source_;
    uint64_t count_ = 0;
  };

  sim::Simulator sim;
  workload::SessionWorkload source(workload::SessionWorkload::Mode::kHybrid,
                                   SmallSessionSpec(), 5);
  workload::WorkloadSource* source_ptr = &source;
  FlakyHost host(&sim, &source_ptr);
  source.Start(&sim, &host);
  sim.RunUntil(60.0);

  EXPECT_GT(source.requests_failed(), 0u);
  EXPECT_DOUBLE_EQ(
      source.active_sessions(),
      static_cast<double>(source.sessions_started() -
                          source.sessions_completed()));
}

TEST(SessionWorkloadTest, ReplaysBitIdenticallyAcrossInstances) {
  auto run = [](uint64_t seed) {
    sim::Simulator sim;
    workload::SessionWorkload source(workload::SessionWorkload::Mode::kHybrid,
                                     SmallSessionSpec(), seed);
    ScriptedHost host(&sim, &source, 0.05, 1024);
    source.Start(&sim, &host);
    sim.RunUntil(90.0);
    std::ostringstream fingerprint;
    fingerprint << source.sessions_started() << '/'
                << source.sessions_completed() << '/' << source.requests_ok()
                << '/' << host.arrivals();
    return fingerprint.str();
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // the seed actually reaches the streams
}

TEST(WorkloadRegistryTest, BuildsEveryRegisteredSource) {
  for (const std::string name : {"open", "closed", "hybrid"}) {
    EXPECT_TRUE(workload::WorkloadRegistry::Global().Contains(name)) << name;
    workload::WorkloadSpec spec = SmallSessionSpec();
    spec.source = name;
    workload::WorkloadSourceContext context;
    context.spec = &spec;
    context.arrival_rate = db::Schedule::Constant(10.0);
    context.seed = 3;
    std::string error;
    auto source =
        workload::WorkloadRegistry::Global().Make(name, context, &error);
    EXPECT_NE(source, nullptr) << error;
  }
  std::string error;
  auto source = workload::WorkloadRegistry::Global().Make(
      "no-such-source", workload::WorkloadSourceContext{}, &error);
  EXPECT_EQ(source, nullptr);
  EXPECT_NE(error.find("hybrid"), std::string::npos) << error;
}

// ------------------------------------------------- acceptance properties --

struct CsvArtifacts {
  std::string cluster;
  std::string aggregate;
  uint64_t commits = 0;
};

CsvArtifacts RunAndExport(const core::ExperimentSpec& spec) {
  const core::SpecRunResult result = core::RunSpec(spec);
  EXPECT_TRUE(result.cluster);
  const core::ClusterResult& cluster = result.cluster_result;
  std::vector<std::vector<core::TrajectoryPoint>> trajectories;
  std::vector<core::ClusterNodePlacementInfo> placement_info;
  for (const core::ClusterNodeResult& node : cluster.nodes) {
    trajectories.push_back(node.trajectory);
    placement_info.push_back({node.remote_frac, node.partitions_owned});
  }
  CsvArtifacts artifacts;
  std::ostringstream cluster_csv;
  core::WriteClusterTrajectoryCsv(cluster_csv, trajectories, placement_info,
                                  cluster.membership);
  artifacts.cluster = cluster_csv.str();
  std::ostringstream aggregate_csv;
  core::WriteTrajectoryCsv(aggregate_csv, cluster.aggregate, {});
  artifacts.aggregate = aggregate_csv.str();
  artifacts.commits = cluster.commits;
  return artifacts;
}

TEST(SessionAcceptanceTest, HybridRunsAreBitDeterministic) {
  const core::ExperimentSpec spec = SessionClusterSpec("hybrid");
  const CsvArtifacts first = RunAndExport(spec);
  const CsvArtifacts second = RunAndExport(spec);
  EXPECT_EQ(first.cluster, second.cluster);
  EXPECT_EQ(first.aggregate, second.aggregate);
  EXPECT_EQ(first.commits, second.commits);
  EXPECT_GT(first.commits, 0u);
}

TEST(SessionAcceptanceTest, ClosedRunsAreBitDeterministic) {
  const core::ExperimentSpec spec = SessionClusterSpec("closed");
  const CsvArtifacts first = RunAndExport(spec);
  const CsvArtifacts second = RunAndExport(spec);
  EXPECT_EQ(first.cluster, second.cluster);
  EXPECT_EQ(first.commits, second.commits);
  EXPECT_GT(first.commits, 0u);
}

TEST(SessionAcceptanceTest, PrintedSpecRunsIdentically) {
  const core::ExperimentSpec spec = SessionClusterSpec("hybrid");
  core::ExperimentSpec reparsed;
  std::string error;
  ASSERT_TRUE(core::ParseSpec(core::PrintSpec(spec), &reparsed, &error))
      << error;
  const CsvArtifacts original = RunAndExport(spec);
  const CsvArtifacts round_tripped = RunAndExport(reparsed);
  EXPECT_EQ(original.cluster, round_tripped.cluster);
  EXPECT_EQ(original.commits, round_tripped.commits);
}

TEST(SessionAcceptanceTest, TelemetryTogglesDoNotChangeResults) {
  core::ExperimentSpec off = SessionClusterSpec("hybrid");
  off.trace_path.clear();
  off.decisions_path.clear();

  core::ExperimentSpec on = off;
  const std::string trace_path =
      ::testing::TempDir() + "/workload_telemetry_trace.json";
  const std::string decisions_path =
      ::testing::TempDir() + "/workload_telemetry_decisions.csv";
  on.trace_path = trace_path;
  on.decisions_path = decisions_path;

  const CsvArtifacts off_csv = RunAndExport(off);
  const CsvArtifacts on_csv = RunAndExport(on);
  EXPECT_EQ(off_csv.cluster, on_csv.cluster);
  EXPECT_EQ(off_csv.aggregate, on_csv.aggregate);
  EXPECT_EQ(off_csv.commits, on_csv.commits);

  // The trace actually recorded session lifecycle events.
  std::ifstream trace(trace_path);
  ASSERT_TRUE(trace.is_open());
  std::stringstream contents;
  contents << trace.rdbuf();
  EXPECT_NE(contents.str().find("workload.active_sessions"),
            std::string::npos);
  std::remove(trace_path.c_str());
  std::remove(decisions_path.c_str());
}

}  // namespace
}  // namespace alc
