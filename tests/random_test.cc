#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sim/random.h"

namespace alc::sim {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  RandomStream a(42);
  RandomStream b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextDouble(), b.NextDouble());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  RandomStream a(1);
  RandomStream b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextDouble() == b.NextDouble()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  RandomStream rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomTest, NextDoubleMeanAndVariance) {
  RandomStream rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.NextDouble();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(RandomTest, NextUint64RespectsBound) {
  RandomStream rng(13);
  for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextUint64(bound), bound);
    }
  }
}

TEST(RandomTest, NextUint64Unbiased) {
  // Bound 3 over many draws: each residue ~1/3.
  RandomStream rng(17);
  int counts[3] = {0, 0, 0};
  const int n = 90000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextUint64(3)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 3.0, 0.01);
  }
}

TEST(RandomTest, NextIntInclusiveRange) {
  RandomStream rng(19);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, ExponentialMeanAndPositivity) {
  RandomStream rng(23);
  const double mean = 0.05;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextExponential(mean);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, mean, mean * 0.02);
}

TEST(RandomTest, ExponentialMemorylessTailFraction) {
  // P(X > mean) should be e^-1.
  RandomStream rng(29);
  const int n = 100000;
  int over = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.NextExponential(1.0) > 1.0) ++over;
  }
  EXPECT_NEAR(static_cast<double>(over) / n, std::exp(-1.0), 0.01);
}

TEST(RandomTest, BernoulliFrequency) {
  RandomStream rng(31);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  RandomStream rng2(32);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng2.NextBernoulli(0.0));
  }
}

TEST(RandomTest, NormalMoments) {
  RandomStream rng(37);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextNormal(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.03);
  EXPECT_NEAR(std::sqrt(sum_sq / n - mean * mean), 2.0, 0.03);
}

TEST(RandomTest, SpawnedStreamsAreIndependentOfConsumption) {
  // Spawning child streams then consuming them in any order must not change
  // their individual sequences.
  RandomStream root_a(99);
  RandomStream child_a1 = root_a.Spawn();
  RandomStream child_a2 = root_a.Spawn();

  RandomStream root_b(99);
  RandomStream child_b1 = root_b.Spawn();
  RandomStream child_b2 = root_b.Spawn();
  // Consume b2 heavily before b1: sequences must match a1/a2 regardless.
  std::vector<double> b2_first;
  for (int i = 0; i < 100; ++i) b2_first.push_back(child_b2.NextDouble());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(child_a1.NextDouble(), child_b1.NextDouble());
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(child_a2.NextDouble(), b2_first[i]);
  }
}

TEST(RandomTest, SpawnedStreamsDoNotCorrelate) {
  RandomStream root(123);
  RandomStream a = root.Spawn();
  RandomStream b = root.Spawn();
  // Crude correlation check over many draws.
  const int n = 50000;
  double sum_ab = 0.0, sum_a = 0.0, sum_b = 0.0, sum_a2 = 0.0, sum_b2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = a.NextDouble();
    const double y = b.NextDouble();
    sum_ab += x * y;
    sum_a += x;
    sum_b += y;
    sum_a2 += x * x;
    sum_b2 += y * y;
  }
  const double cov = sum_ab / n - (sum_a / n) * (sum_b / n);
  const double var_a = sum_a2 / n - (sum_a / n) * (sum_a / n);
  const double var_b = sum_b2 / n - (sum_b / n) * (sum_b / n);
  const double corr = cov / std::sqrt(var_a * var_b);
  EXPECT_LT(std::fabs(corr), 0.02);
}

TEST(RandomTest, SampleWithoutReplacementDistinctAndInRange) {
  RandomStream rng(41);
  std::vector<uint32_t> out;
  for (int trial = 0; trial < 200; ++trial) {
    rng.SampleWithoutReplacement(100, 12, &out);
    ASSERT_EQ(out.size(), 12u);
    std::set<uint32_t> unique(out.begin(), out.end());
    EXPECT_EQ(unique.size(), 12u);
    for (uint32_t v : out) EXPECT_LT(v, 100u);
  }
}

TEST(RandomTest, SampleWithoutReplacementFullPopulation) {
  RandomStream rng(43);
  std::vector<uint32_t> out;
  rng.SampleWithoutReplacement(8, 8, &out);
  std::set<uint32_t> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(RandomTest, SampleWithoutReplacementZero) {
  RandomStream rng(44);
  std::vector<uint32_t> out = {1, 2, 3};
  rng.SampleWithoutReplacement(10, 0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(RandomTest, SampleWithoutReplacementUniformMarginals) {
  // Every item should appear with probability k/population.
  RandomStream rng(47);
  const uint64_t population = 20;
  const int k = 5;
  const int trials = 40000;
  std::vector<int> counts(population, 0);
  std::vector<uint32_t> out;
  for (int t = 0; t < trials; ++t) {
    rng.SampleWithoutReplacement(population, k, &out);
    for (uint32_t v : out) ++counts[v];
  }
  const double expected = static_cast<double>(trials) * k / population;
  for (uint64_t i = 0; i < population; ++i) {
    EXPECT_NEAR(counts[i] / expected, 1.0, 0.05) << "item " << i;
  }
}

TEST(XoshiroTest, LongJumpChangesState) {
  Xoshiro256pp a(5);
  Xoshiro256pp b(5);
  b.LongJump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace alc::sim
