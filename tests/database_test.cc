#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/transaction.h"

namespace alc::db {
namespace {

TEST(DatabaseTest, InitialWriteSequencesAreZero) {
  Database db(100);
  EXPECT_EQ(db.size(), 100u);
  for (ItemId i = 0; i < 100; ++i) {
    EXPECT_EQ(db.last_write_seq(i), 0u);
  }
}

TEST(DatabaseTest, SetAndGetWriteSeq) {
  Database db(10);
  db.set_last_write_seq(3, 77);
  EXPECT_EQ(db.last_write_seq(3), 77u);
  EXPECT_EQ(db.last_write_seq(4), 0u);
}

class AccessPatternTest : public ::testing::Test {
 protected:
  LogicalConfig config_;
  Transaction txn_;
};

TEST_F(AccessPatternTest, PlansDistinctItemsInRange) {
  AccessPatternGenerator gen(&config_, sim::RandomStream(5));
  txn_.cls = TxnClass::kUpdater;
  for (int trial = 0; trial < 100; ++trial) {
    gen.PlanAccesses(&txn_, 500, 16, 0.25);
    ASSERT_EQ(txn_.access_items.size(), 16u);
    ASSERT_EQ(txn_.access_modes.size(), 16u);
    std::set<ItemId> unique(txn_.access_items.begin(),
                            txn_.access_items.end());
    EXPECT_EQ(unique.size(), 16u);
    for (ItemId item : txn_.access_items) EXPECT_LT(item, 500u);
  }
}

TEST_F(AccessPatternTest, QueriesNeverWrite) {
  AccessPatternGenerator gen(&config_, sim::RandomStream(6));
  txn_.cls = TxnClass::kQuery;
  for (int trial = 0; trial < 50; ++trial) {
    gen.PlanAccesses(&txn_, 100, 8, 0.9);  // high write fraction, still query
    for (AccessMode mode : txn_.access_modes) {
      EXPECT_EQ(mode, AccessMode::kRead);
    }
  }
}

TEST_F(AccessPatternTest, UpdaterWriteFrequencyMatchesFraction) {
  AccessPatternGenerator gen(&config_, sim::RandomStream(7));
  txn_.cls = TxnClass::kUpdater;
  int writes = 0, total = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    gen.PlanAccesses(&txn_, 1000, 10, 0.3);
    for (AccessMode mode : txn_.access_modes) {
      ++total;
      if (mode == AccessMode::kWrite) ++writes;
    }
  }
  EXPECT_NEAR(static_cast<double>(writes) / total, 0.3, 0.02);
}

TEST_F(AccessPatternTest, WriteFractionZeroAndOne) {
  AccessPatternGenerator gen(&config_, sim::RandomStream(8));
  txn_.cls = TxnClass::kUpdater;
  gen.PlanAccesses(&txn_, 100, 10, 0.0);
  for (AccessMode mode : txn_.access_modes) EXPECT_EQ(mode, AccessMode::kRead);
  gen.PlanAccesses(&txn_, 100, 10, 1.0);
  for (AccessMode mode : txn_.access_modes) EXPECT_EQ(mode, AccessMode::kWrite);
}

TEST_F(AccessPatternTest, UniformCoverageOverDatabase) {
  // No hot spots: every granule should be touched at a similar rate.
  AccessPatternGenerator gen(&config_, sim::RandomStream(9));
  txn_.cls = TxnClass::kQuery;
  const uint32_t db_size = 50;
  std::vector<int> counts(db_size, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    gen.PlanAccesses(&txn_, db_size, 5, 0.0);
    for (ItemId item : txn_.access_items) ++counts[item];
  }
  const double expected = trials * 5.0 / db_size;
  for (uint32_t i = 0; i < db_size; ++i) {
    EXPECT_NEAR(counts[i] / expected, 1.0, 0.08) << "granule " << i;
  }
}

TEST_F(AccessPatternTest, HotspotSkewsAccesses) {
  config_.hotspot_access_prob = 0.8;
  config_.hotspot_size_fraction = 0.1;
  AccessPatternGenerator gen(&config_, sim::RandomStream(10));
  txn_.cls = TxnClass::kQuery;
  const uint32_t db_size = 1000;  // hot region = first 100 items
  int hot = 0, total = 0;
  for (int t = 0; t < 2000; ++t) {
    gen.PlanAccesses(&txn_, db_size, 8, 0.0);
    for (ItemId item : txn_.access_items) {
      ++total;
      if (item < 100) ++hot;
    }
  }
  EXPECT_NEAR(static_cast<double>(hot) / total, 0.8, 0.05);
}

TEST_F(AccessPatternTest, HotspotStillDistinct) {
  config_.hotspot_access_prob = 0.9;
  config_.hotspot_size_fraction = 0.05;
  AccessPatternGenerator gen(&config_, sim::RandomStream(11));
  txn_.cls = TxnClass::kUpdater;
  for (int t = 0; t < 200; ++t) {
    gen.PlanAccesses(&txn_, 400, 12, 0.5);
    std::set<ItemId> unique(txn_.access_items.begin(),
                            txn_.access_items.end());
    EXPECT_EQ(unique.size(), 12u);
  }
}

TEST(TransactionTest, ResetAttemptClearsPerAttemptState) {
  Transaction txn;
  txn.access_items = {1, 2, 3};
  txn.access_modes = {AccessMode::kRead, AccessMode::kWrite, AccessMode::kRead};
  txn.read_set = {1, 2};
  txn.write_set = {2};
  txn.held_locks = {1};
  txn.blocked_on = 2;
  txn.attempt_cpu = 0.5;
  txn.phase = 7;
  txn.ResetAttempt();
  EXPECT_TRUE(txn.access_items.empty());
  EXPECT_TRUE(txn.access_modes.empty());
  EXPECT_TRUE(txn.read_set.empty());
  EXPECT_TRUE(txn.write_set.empty());
  EXPECT_TRUE(txn.held_locks.empty());
  EXPECT_EQ(txn.blocked_on, -1);
  EXPECT_EQ(txn.attempt_cpu, 0.0);
  EXPECT_EQ(txn.phase, 0);
}

}  // namespace
}  // namespace alc::db
