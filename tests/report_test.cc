#include <sstream>

#include <gtest/gtest.h>

#include "core/report.h"

namespace alc::core {
namespace {

std::vector<OptimumRegime> TwoRegimes() {
  return {{0.0, 100.0, 50.0}, {50.0, 200.0, 80.0}};
}

TrajectoryPoint Point(double time, double bound, double throughput = 0.0) {
  TrajectoryPoint point;
  point.time = time;
  point.bound = bound;
  point.load = bound;
  point.throughput = throughput;
  return point;
}

TEST(OptimumAtTest, PiecewiseLookup) {
  const auto timeline = TwoRegimes();
  EXPECT_DOUBLE_EQ(OptimumAt(timeline, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(OptimumAt(timeline, 49.9), 100.0);
  EXPECT_DOUBLE_EQ(OptimumAt(timeline, 50.0), 200.0);
  EXPECT_DOUBLE_EQ(OptimumAt(timeline, 1e9), 200.0);
}

TEST(TrackingTest, PerfectTrackerHasZeroError) {
  const auto timeline = TwoRegimes();
  std::vector<TrajectoryPoint> trajectory;
  for (double t = 1.0; t <= 100.0; t += 1.0) {
    trajectory.push_back(Point(t, OptimumAt(timeline, t), 50.0));
  }
  TrackingOptions options;
  const TrackingStats stats = EvaluateTracking(trajectory, timeline, options);
  EXPECT_DOUBLE_EQ(stats.mean_abs_error, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_rel_error, 0.0);
  ASSERT_EQ(stats.recovery_times.size(), 1u);
  // Settles after `settle_intervals` points in band.
  EXPECT_NEAR(stats.recovery_times[0], options.settle_intervals, 1.01);
}

TEST(TrackingTest, ConstantOffsetError) {
  const auto timeline = TwoRegimes();
  std::vector<TrajectoryPoint> trajectory;
  for (double t = 1.0; t <= 100.0; t += 1.0) {
    trajectory.push_back(Point(t, OptimumAt(timeline, t) + 30.0));
  }
  TrackingOptions options;
  const TrackingStats stats = EvaluateTracking(trajectory, timeline, options);
  EXPECT_NEAR(stats.mean_abs_error, 30.0, 1e-9);
  // 30/100 off in regime 1, 30/200 in regime 2 -> mean 0.225.
  EXPECT_NEAR(stats.mean_rel_error, 0.225, 0.01);
}

TEST(TrackingTest, NeverSettlingReportsNegative) {
  const auto timeline = TwoRegimes();
  std::vector<TrajectoryPoint> trajectory;
  for (double t = 1.0; t <= 100.0; t += 1.0) {
    trajectory.push_back(Point(t, 100.0));  // stays at the old optimum
  }
  TrackingOptions options;
  options.band = 0.10;
  const TrackingStats stats = EvaluateTracking(trajectory, timeline, options);
  ASSERT_EQ(stats.recovery_times.size(), 1u);
  EXPECT_LT(stats.recovery_times[0], 0.0);
}

TEST(TrackingTest, RecoveryMeasuredFromChangeTime) {
  const auto timeline = TwoRegimes();
  std::vector<TrajectoryPoint> trajectory;
  for (double t = 1.0; t <= 100.0; t += 1.0) {
    // Reaches the new optimum 10s after the change at t=50.
    const double bound = (t < 60.0) ? 100.0 : 200.0;
    trajectory.push_back(Point(t, bound));
  }
  TrackingOptions options;
  options.band = 0.05;
  options.settle_intervals = 3;
  const TrackingStats stats = EvaluateTracking(trajectory, timeline, options);
  ASSERT_EQ(stats.recovery_times.size(), 1u);
  EXPECT_NEAR(stats.recovery_times[0], 12.0, 1.01);  // 10 + settle window
}

TEST(TrackingTest, ThroughputCaptureFraction) {
  const auto timeline = TwoRegimes();  // peaks 50 and 80
  std::vector<TrajectoryPoint> trajectory;
  // First regime: at peak (50); second: 40 of 80 = half, below the band.
  for (double t = 1.0; t <= 49.0; t += 1.0) {
    trajectory.push_back(Point(t, 100.0, 50.0));
  }
  for (double t = 50.0; t <= 98.0; t += 1.0) {
    trajectory.push_back(Point(t, 200.0, 40.0));
  }
  TrackingOptions options;
  options.throughput_band = 0.15;
  const TrackingStats stats = EvaluateTracking(trajectory, timeline, options);
  EXPECT_NEAR(stats.throughput_capture, 0.5, 0.02);
}

TEST(TrackingTest, SkipInitialExcludesColdStart) {
  const auto timeline = TwoRegimes();
  std::vector<TrajectoryPoint> trajectory;
  trajectory.push_back(Point(1.0, 1000.0));  // terrible cold start
  for (double t = 2.0; t <= 49.0; t += 1.0) {
    trajectory.push_back(Point(t, 100.0));
  }
  TrackingOptions options;
  options.skip_initial = 1.5;
  const TrackingStats stats = EvaluateTracking(trajectory, timeline, options);
  EXPECT_DOUBLE_EQ(stats.mean_abs_error, 0.0);
}

TEST(PrintTrajectoryTest, RendersRows) {
  const auto timeline = TwoRegimes();
  std::vector<TrajectoryPoint> trajectory;
  for (double t = 1.0; t <= 10.0; t += 1.0) {
    trajectory.push_back(Point(t, 123.0, 45.0));
  }
  std::ostringstream out;
  PrintTrajectory(out, trajectory, timeline, 2);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find("n* (bound)"), std::string::npos);
  EXPECT_NE(rendered.find("n_opt"), std::string::npos);
  EXPECT_NE(rendered.find("123.0"), std::string::npos);
}

TEST(SummaryLineTest, ContainsKeyNumbers) {
  ExperimentResult result;
  result.mean_throughput = 123.45;
  result.mean_response = 0.5;
  result.mean_active = 99.0;
  result.abort_ratio = 0.25;
  result.commits = 1000;
  const std::string line = SummaryLine("test-label", result);
  EXPECT_NE(line.find("test-label"), std::string::npos);
  EXPECT_NE(line.find("123.45"), std::string::npos);
  EXPECT_NE(line.find("1000"), std::string::npos);
}

}  // namespace
}  // namespace alc::core
