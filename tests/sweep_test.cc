// SweepRunner: grid expansion, bit-identical parallel-vs-sequential
// results, and the acceptance check that the checked-in flash-crowd spec
// file reproduces bench/cluster_routing's headline JSQ result with
// bit-identical CSV output.

#include "core/sweep.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cluster_experiment.h"
#include "core/cluster_scenario.h"
#include "core/export.h"
#include "core/spec.h"

namespace alc {
namespace {

std::string ClusterCsv(const core::ClusterResult& result) {
  std::vector<std::vector<core::TrajectoryPoint>> trajectories;
  std::vector<core::ClusterNodePlacementInfo> info;
  for (const core::ClusterNodeResult& node : result.nodes) {
    trajectories.push_back(node.trajectory);
    info.push_back({node.remote_frac, node.partitions_owned});
  }
  std::ostringstream out;
  core::WriteClusterTrajectoryCsv(out, trajectories, info);
  return out.str();
}

/// A small 2-node cluster spec cheap enough to sweep many times.
core::ExperimentSpec SmallClusterSpec() {
  core::ExperimentSpec spec;
  spec.name = "sweep-test";
  spec.cluster = true;
  spec.seed = 21;
  spec.duration = 10.0;
  spec.warmup = 2.0;
  spec.arrival_rate = db::Schedule::Constant(120.0);
  spec.nodes.resize(2);
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    core::NodeSpec& node = spec.nodes[i];
    node.system.seed = core::DecorrelatedNodeSeed(21, static_cast<int>(i));
    node.system.physical.num_cpus = 4;
    node.system.logical.db_size = 600;
    node.system.logical.accesses_per_txn = 8;
    node.dynamics.k = db::Schedule::Constant(8);
    node.control.measurement_interval = 0.5;
    node.control.initial_limit = 20.0;
    node.control.params.SetDouble("pa.initial_bound", 20.0);
    node.control.params.SetDouble("pa.max_bound", 200.0);
  }
  return spec;
}

TEST(SweepRunnerTest, ExpandsGridRowMajor) {
  core::SweepRunner runner(
      SmallClusterSpec(),
      {{"routing", {"round-robin", "join-shortest-queue"}},
       {"node.control.controller", {"none", "fixed", "parabola-approximation"}}});
  EXPECT_EQ(runner.num_points(), 6);

  std::vector<std::pair<std::string, std::string>> assignment;
  core::ExperimentSpec point = runner.SpecAt(0, &assignment);
  EXPECT_EQ(assignment[0].second, "round-robin");
  EXPECT_EQ(assignment[1].second, "none");
  EXPECT_EQ(point.routing, "round-robin");
  EXPECT_EQ(point.nodes[0].control.controller, "none");
  EXPECT_EQ(point.nodes[1].control.controller, "none");

  // Last axis fastest: index 4 = (join-shortest-queue, fixed).
  point = runner.SpecAt(4, &assignment);
  EXPECT_EQ(point.routing, "join-shortest-queue");
  EXPECT_EQ(point.nodes[0].control.controller, "fixed");
}

TEST(SweepRunnerTest, ParallelMatchesSequentialBitExactly) {
  core::SweepRunner runner(
      SmallClusterSpec(),
      {{"routing", {"round-robin", "join-shortest-queue"}},
       {"node.control.controller", {"none", "parabola-approximation"}}});

  const std::vector<core::SweepPointResult> sequential = runner.Run(1);
  const std::vector<core::SweepPointResult> parallel = runner.Run(4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].assignment, parallel[i].assignment);
    EXPECT_EQ(sequential[i].result.commits(), parallel[i].result.commits())
        << "point " << i;
    EXPECT_EQ(ClusterCsv(sequential[i].result.cluster_result),
              ClusterCsv(parallel[i].result.cluster_result))
        << "point " << i;
  }
}

// --------------------------------------------- bench reproduction (spec) --

/// bench/cluster_routing's BenchNode/BaseCluster, reproduced through the
/// legacy struct API as the reference for the spec file.
core::ClusterNodeScenario LegacyBenchNode(uint64_t seed) {
  core::ClusterNodeScenario node;
  node.system.physical.num_cpus = 4;
  node.system.physical.cpu_init_mean = 0.001;
  node.system.physical.cpu_access_mean = 0.001;
  node.system.physical.cpu_commit_mean = 0.001;
  node.system.physical.cpu_write_commit_mean = 0.004;
  node.system.physical.io_time = 0.008;
  node.system.physical.restart_delay_mean = 0.02;
  node.system.logical.db_size = 600;
  node.system.logical.accesses_per_txn = 8;
  node.system.logical.query_fraction = 0.3;
  node.system.logical.write_fraction = 0.4;
  node.system.seed = seed;
  node.dynamics = db::WorkloadDynamics::FromConfig(node.system.logical);
  node.control.name = "parabola-approximation";
  node.control.measurement_interval = 0.5;
  node.control.initial_limit = 20.0;
  node.control.is.initial_bound = 20.0;
  node.control.is.min_bound = 2.0;
  node.control.is.max_bound = 200.0;
  node.control.pa.initial_bound = 20.0;
  node.control.pa.min_bound = 2.0;
  node.control.pa.max_bound = 200.0;
  node.control.pa.dither = 5.0;
  node.control.fixed_limit = 25.0;
  return node;
}

TEST(SpecFileTest, FlashSpecReproducesClusterRoutingBenchBitExactly) {
  // Reference: the configuration bench/cluster_routing builds for its
  // headline flash-crowd JSQ + Parabola cell, via the legacy struct path.
  core::ClusterScenarioConfig reference;
  for (int i = 0; i < 4; ++i) {
    reference.nodes.push_back(
        LegacyBenchNode(core::DecorrelatedNodeSeed(42, i)));
  }
  reference.seed = 42;
  reference.duration = 160.0;
  reference.warmup = 20.0;
  reference.arrival_rate = core::FlashCrowdSchedule(320.0, 900.0, 40.0, 80.0);
  reference.routing_name = "join-shortest-queue";
  const core::ClusterResult expected =
      core::ClusterExperiment(reference).Run();

  core::ExperimentSpec spec;
  std::string error;
  ASSERT_TRUE(core::LoadSpecFile(
      std::string(ALC_SOURCE_DIR) + "/specs/cluster_routing_flash.spec",
      &spec, &error))
      << error;
  const core::SpecRunResult actual = core::RunSpec(spec);
  ASSERT_TRUE(actual.cluster);

  EXPECT_EQ(ClusterCsv(expected), ClusterCsv(actual.cluster_result));
  EXPECT_EQ(expected.commits, actual.cluster_result.commits);
  EXPECT_EQ(expected.total_throughput,
            actual.cluster_result.total_throughput);
  EXPECT_EQ(expected.routed, actual.cluster_result.routed);
}

TEST(SpecFileTest, SmokeSpecParsesAndDescribesAPlacementCluster) {
  core::ExperimentSpec spec;
  std::string error;
  ASSERT_TRUE(core::LoadSpecFile(
      std::string(ALC_SOURCE_DIR) + "/specs/smoke.spec", &spec, &error))
      << error;
  EXPECT_TRUE(spec.cluster);
  EXPECT_EQ(spec.nodes.size(), 4u);
  EXPECT_TRUE(spec.placement_enabled);
  EXPECT_EQ(spec.placement.kind, placement::PlacementKind::kReplicated);
  EXPECT_EQ(spec.routing, "locality-threshold");
}

}  // namespace
}  // namespace alc
