// End-to-end reproductions of the paper's qualitative claims, downscaled so
// the whole suite stays fast. The full-scale versions live in bench/.

#include <cmath>

#include <gtest/gtest.h>

#include "control/gate.h"
#include "core/experiment.h"
#include "core/optimum.h"
#include "core/report.h"
#include "core/scenario.h"
#include "db/system.h"
#include "sim/simulator.h"

namespace alc::core {
namespace {

/// A scaled-down contention-bound system with a clear interior optimum.
ScenarioConfig MidScenario(uint64_t seed = 21) {
  ScenarioConfig scenario;
  scenario.system.physical.num_terminals = 200;
  scenario.system.physical.think_time_mean = 0.4;
  scenario.system.physical.num_cpus = 6;
  scenario.system.physical.cpu_init_mean = 0.0008;
  scenario.system.physical.cpu_access_mean = 0.0008;
  scenario.system.physical.cpu_commit_mean = 0.001;
  scenario.system.physical.cpu_write_commit_mean = 0.006;
  scenario.system.physical.io_time = 0.012;
  scenario.system.physical.restart_delay_mean = 0.02;
  scenario.system.logical.db_size = 2000;
  scenario.system.logical.accesses_per_txn = 10;
  scenario.system.logical.query_fraction = 0.3;
  scenario.system.logical.write_fraction = 0.4;
  scenario.system.seed = seed;
  scenario.dynamics = db::WorkloadDynamics::FromConfig(scenario.system.logical);
  scenario.active_terminals = db::Schedule::Constant(200);
  scenario.duration = 120.0;
  scenario.warmup = 30.0;
  scenario.control.measurement_interval = 1.0;
  scenario.control.initial_limit = 20.0;
  scenario.control.is.min_bound = 4.0;
  scenario.control.is.max_bound = 200.0;
  scenario.control.is.initial_bound = 20.0;
  scenario.control.is.beta = 0.5;
  scenario.control.is.gamma = 4.0;
  scenario.control.is.delta = 12.0;
  scenario.control.pa.min_bound = 4.0;
  scenario.control.pa.max_bound = 200.0;
  scenario.control.pa.initial_bound = 20.0;
  scenario.control.pa.dither = 5.0;
  return scenario;
}

double RunWith(const char* controller, ScenarioConfig scenario) {
  scenario.control.name = controller;
  return Experiment(scenario).Run().mean_throughput;
}

TEST(IntegrationTest, ThrashingExistsWithoutControl) {
  // Figure 1 / figure 12 premise: a moderate fixed bound beats letting the
  // full population in.
  ScenarioConfig scenario = MidScenario();
  scenario.control.fixed_limit = 40.0;
  const double bounded = RunWith("fixed", scenario);
  const double unbounded = RunWith("none", scenario);
  EXPECT_GT(bounded, unbounded * 1.3)
      << "bounded=" << bounded << " unbounded=" << unbounded;
}

TEST(IntegrationTest, AdaptiveControllersPreventThrashing) {
  const ScenarioConfig scenario = MidScenario();
  const double none = RunWith("none", scenario);
  const double pa = RunWith("parabola-approximation", scenario);
  const double is = RunWith("incremental-steps", scenario);
  EXPECT_GT(pa, none * 1.2) << "pa=" << pa << " none=" << none;
  EXPECT_GT(is, none * 1.2) << "is=" << is << " none=" << none;
}

TEST(IntegrationTest, AdaptiveNearStationaryOptimum) {
  // Figure 12's claim: with control the system operates near the optimum.
  ScenarioConfig scenario = MidScenario();
  OptimumSearchConfig search;
  search.n_lo = 5.0;
  search.n_hi = 150.0;
  search.coarse_points = 7;
  search.refine_rounds = 1;
  search.sim_duration = 40.0;
  search.sim_warmup = 10.0;
  const OptimumResult optimum = OptimumFinder(scenario, search).FindAt(0.0);
  ASSERT_GT(optimum.peak_throughput, 0.0);
  const double pa = RunWith("parabola-approximation", scenario);
  EXPECT_GT(pa, 0.80 * optimum.peak_throughput)
      << "pa=" << pa << " peak=" << optimum.peak_throughput;
}

TEST(IntegrationTest, ControllersFollowJumpOfOptimum) {
  // Figures 13/14: the optimum's position jumps; both controllers must
  // leave the old operating point and re-settle near the new one.
  ScenarioConfig scenario = MidScenario();
  scenario.duration = 300.0;
  scenario.warmup = 30.0;
  // Keep both regimes contention-bound (interior optimum) so a gradient
  // signal exists on both sides of the jump.
  scenario.system.logical.db_size = 800;
  scenario.control.is.max_bound = 150.0;
  scenario.control.pa.max_bound = 150.0;
  // Write-fraction jump moves the resource bottleneck and with it n_opt.
  scenario.dynamics.write_fraction =
      db::Schedule::Steps(0.5, {{120.0, 0.15}});

  OptimumSearchConfig search;
  search.n_lo = 5.0;
  search.n_hi = 150.0;
  search.coarse_points = 7;
  search.refine_rounds = 1;
  search.sim_duration = 40.0;
  search.sim_warmup = 10.0;
  const auto timeline = OptimumFinder(scenario, search).Timeline(300.0);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_GT(timeline[1].n_opt, timeline[0].n_opt * 1.3)
      << "the jump must move the optimum substantially";

  // The paper (figs. 13/14) reports PA tracking the moved optimum more
  // accurately than IS, which "has serious problems to adjust correctly":
  // we require the sluggish-but-safe behaviour from IS and accurate
  // re-tracking from PA.
  struct Expectation {
    const char* controller;
    double min_ratio;
  };
  for (const Expectation& expect :
       {Expectation{"incremental-steps", 1.10},
        Expectation{"parabola-approximation", 1.25}}) {
    ScenarioConfig run_scenario = scenario;
    run_scenario.control.name = expect.controller;
    const ExperimentResult result = Experiment(run_scenario).Run();

    double before = 0.0, after = 0.0;
    int n_before = 0, n_after = 0;
    for (const TrajectoryPoint& point : result.trajectory) {
      if (point.time >= 90.0 && point.time < 120.0) {
        before += point.bound;
        ++n_before;
      } else if (point.time >= 255.0) {
        after += point.bound;
        ++n_after;
      }
    }
    ASSERT_GT(n_before, 0);
    ASSERT_GT(n_after, 0);
    before /= n_before;
    after /= n_after;
    EXPECT_GT(after, before * expect.min_ratio)
        << expect.controller
        << ": bound did not follow the jump (" << before << " -> " << after
        << ", optimum " << timeline[0].n_opt << " -> " << timeline[1].n_opt
        << ")";
  }
}

TEST(IntegrationTest, SinusoidalVariationIsTracked) {
  // Section 9: both algorithms follow gradual (sinusoidal) changes.
  ScenarioConfig scenario = MidScenario();
  scenario.duration = 360.0;
  scenario.warmup = 60.0;
  scenario.dynamics.write_fraction =
      db::Schedule::Sinusoid(0.25, 0.2, 150.0);  // 0.05..0.45

  ScenarioConfig run_scenario = scenario;
  run_scenario.control.name = "parabola-approximation";
  const ExperimentResult result = Experiment(run_scenario).Run();

  // The bound should be higher when the write fraction is low. Compare the
  // mean bound in low-write windows vs high-write windows (steady state).
  double low_sum = 0.0, high_sum = 0.0;
  int low_n = 0, high_n = 0;
  for (const TrajectoryPoint& point : result.trajectory) {
    if (point.time < 100.0) continue;
    const double w = scenario.dynamics.write_fraction.Value(point.time);
    if (w < 0.15) {
      low_sum += point.bound;
      ++low_n;
    } else if (w > 0.35) {
      high_sum += point.bound;
      ++high_n;
    }
  }
  ASSERT_GT(low_n, 10);
  ASSERT_GT(high_n, 10);
  EXPECT_GT(low_sum / low_n, 1.15 * (high_sum / high_n));
}

TEST(IntegrationTest, BlockedTransactionsGrowSuperlinearly2PL) {
  // Section 1 (Tay): for blocking CC the mean number of blocked
  // transactions is a quadratic function of the concurrency level.
  auto blocked_at = [](double limit) {
    ScenarioConfig scenario = MidScenario();
    scenario.system.cc = db::CcScheme::kTwoPhaseLocking;
    scenario.system.logical.db_size = 600;
    scenario.system.logical.write_fraction = 0.5;
    scenario.control.name = "fixed";
    scenario.control.fixed_limit = limit;
    scenario.control.initial_limit = limit;
    scenario.duration = 60.0;
    scenario.warmup = 15.0;
    sim::Simulator simulator;
    db::TransactionSystem system(&simulator, scenario.system);
    control::AdmissionGate gate(&system, limit);
    system.Start();
    simulator.RunUntil(60.0);
    return system.metrics().blocked_track.AverageUntil(simulator.Now());
  };
  const double b20 = blocked_at(20.0);
  const double b60 = blocked_at(60.0);
  ASSERT_GT(b20, 0.01);
  // 3x the load must yield clearly more than 3x the blocked count.
  EXPECT_GT(b60 / b20, 4.5) << "b20=" << b20 << " b60=" << b60;
}

TEST(IntegrationTest, DisplacementSpeedsUpDownwardAdjustment) {
  // Section 4.3: displacement enforces a lowered bound instantly, at the
  // cost of aborted work. After a downward jump of the optimum, the
  // displacing variant reaches low load sooner.
  ScenarioConfig scenario = MidScenario();
  scenario.duration = 160.0;
  scenario.warmup = 20.0;
  scenario.dynamics.write_fraction = db::Schedule::Steps(0.05, {{80.0, 0.6}});
  scenario.control.name = "parabola-approximation";

  auto load_after_jump = [&](bool displacement) {
    ScenarioConfig run_scenario = scenario;
    run_scenario.control.displacement = displacement;
    const ExperimentResult result = Experiment(run_scenario).Run();
    double sum = 0.0;
    int count = 0;
    for (const TrajectoryPoint& point : result.trajectory) {
      if (point.time >= 80.0 && point.time <= 100.0) {
        sum += point.load;
        ++count;
      }
    }
    return sum / count;
  };
  const double with_displacement = load_after_jump(true);
  const double without_displacement = load_after_jump(false);
  EXPECT_LE(with_displacement, without_displacement * 1.05);
}

}  // namespace
}  // namespace alc::core
