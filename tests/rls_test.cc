#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "control/rls.h"
#include "sim/random.h"
#include "util/math.h"

namespace alc::control {
namespace {

TEST(RlsTest, RecoversExactLine) {
  // y = 3 + 2x, no noise.
  RecursiveLeastSquares rls(2, 1.0, 1e6);
  for (double x = 0.0; x < 20.0; x += 1.0) {
    rls.Update({1.0, x}, 3.0 + 2.0 * x);
  }
  EXPECT_NEAR(rls.coefficients()[0], 3.0, 1e-3);
  EXPECT_NEAR(rls.coefficients()[1], 2.0, 1e-4);
}

TEST(RlsTest, RecoversExactParabola) {
  // P(n) = 10 + 4n - 0.5n^2.
  RecursiveLeastSquares rls(3, 1.0, 1e6);
  for (double n = 0.0; n <= 10.0; n += 0.5) {
    rls.Update({1.0, n, n * n}, 10.0 + 4.0 * n - 0.5 * n * n);
  }
  EXPECT_NEAR(rls.coefficients()[0], 10.0, 1e-2);
  EXPECT_NEAR(rls.coefficients()[1], 4.0, 1e-2);
  EXPECT_NEAR(rls.coefficients()[2], -0.5, 1e-3);
}

TEST(RlsTest, MatchesBatchLeastSquaresWithoutForgetting) {
  // With alpha=1 and a weak prior, RLS converges to the batch LS solution.
  sim::RandomStream rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.NextDouble() * 10.0;
    const double y = 1.5 - 0.8 * x + 0.1 * x * x + rng.NextNormal(0.0, 0.2);
    xs.push_back(x);
    ys.push_back(y);
  }
  RecursiveLeastSquares rls(3, 1.0, 1e8);
  for (size_t i = 0; i < xs.size(); ++i) {
    rls.Update({1.0, xs[i], xs[i] * xs[i]}, ys[i]);
  }
  const auto batch = util::PolyFit(xs, ys, 2);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_NEAR(rls.coefficients()[0], batch[0], 5e-3);
  EXPECT_NEAR(rls.coefficients()[1], batch[1], 5e-3);
  EXPECT_NEAR(rls.coefficients()[2], batch[2], 5e-3);
}

TEST(RlsTest, ForgettingTracksDriftingCoefficients) {
  // The slope changes halfway; the fading-memory estimator must follow.
  RecursiveLeastSquares fading(2, 0.85, 1e6);
  RecursiveLeastSquares growing(2, 1.0, 1e6);
  sim::RandomStream rng(7);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.NextDouble() * 5.0;
    const double y = 1.0 + 2.0 * x;
    fading.Update({1.0, x}, y);
    growing.Update({1.0, x}, y);
  }
  for (int i = 0; i < 100; ++i) {
    const double x = rng.NextDouble() * 5.0;
    const double y = 1.0 + 5.0 * x;  // new slope
    fading.Update({1.0, x}, y);
    growing.Update({1.0, x}, y);
  }
  const double fading_err = std::fabs(fading.coefficients()[1] - 5.0);
  const double growing_err = std::fabs(growing.coefficients()[1] - 5.0);
  EXPECT_LT(fading_err, 0.05);
  EXPECT_GT(growing_err, fading_err * 5.0);
}

TEST(RlsTest, EffectiveMemoryMatchesTheory) {
  // Paper fig. 6: the weight of an s-step-old sample is alpha^s; a short
  // interval with alpha=0.8 spans about 1/(1-alpha)=5 samples of memory.
  // Feed a step change and verify the estimate crosses the midpoint within
  // ~2x that horizon (regressor is a constant, so a = smoothed y).
  RecursiveLeastSquares rls(1, 0.8, 1e6);
  for (int i = 0; i < 50; ++i) rls.Update({1.0}, 0.0);
  int steps_to_half = -1;
  for (int i = 0; i < 50; ++i) {
    rls.Update({1.0}, 10.0);
    if (rls.coefficients()[0] >= 5.0) {
      steps_to_half = i + 1;
      break;
    }
  }
  ASSERT_GT(steps_to_half, 0);
  EXPECT_LE(steps_to_half, 10);
}

TEST(RlsTest, PredictMatchesCoefficients) {
  RecursiveLeastSquares rls(2, 1.0, 1e6);
  for (double x = 0.0; x < 10.0; x += 1.0) {
    rls.Update({1.0, x}, 2.0 * x);
  }
  EXPECT_NEAR(rls.Predict({1.0, 7.5}), 15.0, 1e-2);
}

TEST(RlsTest, ResetClearsEverything) {
  RecursiveLeastSquares rls(2, 0.9, 100.0);
  rls.Update({1.0, 2.0}, 5.0);
  rls.Update({1.0, 3.0}, 7.0);
  ASSERT_GT(rls.updates(), 0);
  rls.Reset();
  EXPECT_EQ(rls.updates(), 0);
  EXPECT_EQ(rls.coefficients()[0], 0.0);
  EXPECT_EQ(rls.coefficients()[1], 0.0);
  EXPECT_DOUBLE_EQ(rls.covariance(0, 0), 100.0);
  EXPECT_DOUBLE_EQ(rls.covariance(0, 1), 0.0);
}

TEST(RlsTest, ResetCovarianceKeepsCoefficients) {
  RecursiveLeastSquares rls(2, 1.0, 1e4);
  for (double x = 0.0; x < 10.0; x += 1.0) {
    rls.Update({1.0, x}, 1.0 + 2.0 * x);
  }
  const double a0 = rls.coefficients()[0];
  const double a1 = rls.coefficients()[1];
  rls.ResetCovariance();
  EXPECT_DOUBLE_EQ(rls.coefficients()[0], a0);
  EXPECT_DOUBLE_EQ(rls.coefficients()[1], a1);
  EXPECT_DOUBLE_EQ(rls.covariance(0, 0), 1e4);
  // After the reset, new data dominates quickly: one conflicting sample
  // moves the estimate substantially.
  rls.Update({1.0, 5.0}, 100.0);
  EXPECT_GT(std::fabs(rls.coefficients()[1] - a1), 0.5);
}

TEST(RlsTest, CovarianceShrinksWithData) {
  RecursiveLeastSquares rls(2, 1.0, 1e6);
  sim::RandomStream rng(11);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.NextDouble() * 4.0;
    rls.Update({1.0, x}, 3.0 * x);
  }
  EXPECT_LT(rls.covariance(0, 0), 1.0);
  EXPECT_LT(rls.covariance(1, 1), 1.0);
}

TEST(RlsTest, CovarianceStaysSymmetric) {
  RecursiveLeastSquares rls(3, 0.9, 1e5);
  sim::RandomStream rng(13);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextDouble() * 8.0;
    rls.Update({1.0, x, x * x}, 1.0 + x - 0.2 * x * x +
                                   rng.NextNormal(0.0, 0.1));
  }
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(rls.covariance(r, c), rls.covariance(c, r));
    }
  }
}

TEST(RlsTest, NoisyParabolaVertexEstimate) {
  // End-to-end quality: with noise, the vertex -a1/(2 a2) lands near truth.
  sim::RandomStream rng(17);
  RecursiveLeastSquares rls(3, 0.98, 1e6);
  const double n_opt = 6.0;
  for (int i = 0; i < 400; ++i) {
    const double n = rng.NextDouble() * 12.0;
    const double perf = 100.0 - 2.0 * (n - n_opt) * (n - n_opt) +
                        rng.NextNormal(0.0, 3.0);
    rls.Update({1.0, n, n * n}, perf);
  }
  const auto& c = rls.coefficients();
  ASSERT_LT(c[2], 0.0);
  EXPECT_NEAR(-c[1] / (2.0 * c[2]), n_opt, 0.5);
}

}  // namespace
}  // namespace alc::control
