#include <vector>

#include <gtest/gtest.h>

#include "db/cpu.h"
#include "db/disk.h"
#include "sim/simulator.h"

namespace alc::db {
namespace {

TEST(CpuTest, SingleRequestCompletesAfterServiceTime) {
  sim::Simulator sim;
  CpuSubsystem cpu(&sim, 1);
  double done_at = -1.0;
  cpu.Request(2.5, [&] { done_at = sim.Now(); });
  sim.RunAll();
  EXPECT_DOUBLE_EQ(done_at, 2.5);
  EXPECT_EQ(cpu.completed(), 1u);
}

TEST(CpuTest, ParallelServiceUpToProcessorCount) {
  sim::Simulator sim;
  CpuSubsystem cpu(&sim, 2);
  std::vector<double> done;
  for (int i = 0; i < 2; ++i) {
    cpu.Request(1.0, [&] { done.push_back(sim.Now()); });
  }
  sim.RunAll();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 1.0);  // both in parallel
}

TEST(CpuTest, ExcessRequestsQueueFifo) {
  sim::Simulator sim;
  CpuSubsystem cpu(&sim, 1);
  std::vector<int> order;
  std::vector<double> times;
  for (int i = 0; i < 3; ++i) {
    cpu.Request(1.0, [&, i] {
      order.push_back(i);
      times.push_back(sim.Now());
    });
  }
  EXPECT_EQ(cpu.queue_length(), 2u);
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
  EXPECT_DOUBLE_EQ(times[2], 3.0);
}

TEST(CpuTest, MServerBusyPeriod) {
  // 4 requests of 1s on 2 servers: finish at 1,1,2,2.
  sim::Simulator sim;
  CpuSubsystem cpu(&sim, 2);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) {
    cpu.Request(1.0, [&] { done.push_back(sim.Now()); });
  }
  sim.RunAll();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 1.0);
  EXPECT_DOUBLE_EQ(done[2], 2.0);
  EXPECT_DOUBLE_EQ(done[3], 2.0);
}

TEST(CpuTest, BusyCountReflectsInService) {
  sim::Simulator sim;
  CpuSubsystem cpu(&sim, 3);
  cpu.Request(5.0, [] {});
  cpu.Request(5.0, [] {});
  EXPECT_EQ(cpu.busy(), 2);
  EXPECT_EQ(cpu.queue_length(), 0u);
  sim.RunAll();
  EXPECT_EQ(cpu.busy(), 0);
}

TEST(CpuTest, UtilizationAccounting) {
  sim::Simulator sim;
  CpuSubsystem cpu(&sim, 2);
  cpu.Request(4.0, [] {});  // one server busy 4s of 10s
  sim.RunUntil(10.0);
  EXPECT_NEAR(cpu.busy_time(), 4.0, 1e-12);
  EXPECT_NEAR(cpu.Utilization(), 4.0 / 20.0, 1e-12);
}

TEST(CpuTest, UtilizationWhileStillBusy) {
  sim::Simulator sim;
  CpuSubsystem cpu(&sim, 1);
  cpu.Request(10.0, [] {});
  sim.RunUntil(5.0);
  EXPECT_NEAR(cpu.busy_time(), 5.0, 1e-12);
  EXPECT_NEAR(cpu.Utilization(), 1.0, 1e-12);
}

TEST(CpuTest, ChainedRequestsFromCompletion) {
  // A completion callback issuing a new request must not deadlock or skip
  // the queue.
  sim::Simulator sim;
  CpuSubsystem cpu(&sim, 1);
  std::vector<double> done;
  cpu.Request(1.0, [&] {
    done.push_back(sim.Now());
    cpu.Request(1.0, [&] { done.push_back(sim.Now()); });
  });
  cpu.Request(1.0, [&] { done.push_back(sim.Now()); });
  sim.RunAll();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);  // the queued request goes first
  EXPECT_DOUBLE_EQ(done[2], 3.0);  // then the chained one
}

TEST(CpuTest, ZeroServiceTime) {
  sim::Simulator sim;
  CpuSubsystem cpu(&sim, 1);
  bool fired = false;
  cpu.Request(0.0, [&] { fired = true; });
  sim.RunAll();
  EXPECT_TRUE(fired);
}

TEST(DiskTest, ConstantServiceNoContention) {
  sim::Simulator sim;
  DiskSubsystem disk(&sim, 0.03);
  std::vector<double> done;
  // 10 simultaneous requests all complete at the same time: inf. server.
  for (int i = 0; i < 10; ++i) {
    disk.Request([&] { done.push_back(sim.Now()); });
  }
  EXPECT_EQ(disk.in_flight(), 10);
  sim.RunAll();
  ASSERT_EQ(done.size(), 10u);
  for (double t : done) EXPECT_DOUBLE_EQ(t, 0.03);
  EXPECT_EQ(disk.completed(), 10u);
  EXPECT_EQ(disk.in_flight(), 0);
}

TEST(DiskTest, StaggeredRequests) {
  sim::Simulator sim;
  DiskSubsystem disk(&sim, 1.0);
  std::vector<double> done;
  sim.Schedule(0.0, [&] { disk.Request([&] { done.push_back(sim.Now()); }); });
  sim.Schedule(0.5, [&] { disk.Request([&] { done.push_back(sim.Now()); }); });
  sim.RunAll();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 1.5);
}

}  // namespace
}  // namespace alc::db
