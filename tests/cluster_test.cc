#include <gtest/gtest.h>

#include <cstring>

#include "cluster/cluster.h"
#include "cluster/metrics.h"
#include "cluster/router.h"
#include "core/cluster_experiment.h"
#include "core/cluster_scenario.h"

namespace alc {
namespace {

// ---------------------------------------------------------------- policies --

std::vector<cluster::NodeView> Views(std::vector<int> active,
                                     std::vector<int> queued) {
  std::vector<cluster::NodeView> views(active.size());
  for (size_t i = 0; i < active.size(); ++i) {
    views[i].active = active[i];
    views[i].gate_queue = queued[i];
    views[i].limit = 50.0;
  }
  return views;
}

/// Routes one arrival over an all-live membership (no placement context).
int RouteAllLive(cluster::RoutingPolicy& policy,
                 const std::vector<cluster::NodeView>& views) {
  cluster::AllLiveMembership membership(views);
  return policy.Route(membership.view(), cluster::RouteContext{});
}

TEST(RoutingPolicyTest, RoundRobinCycles) {
  cluster::RoundRobinPolicy policy;
  const auto views = Views({0, 0, 0}, {0, 0, 0});
  EXPECT_EQ(RouteAllLive(policy, views), 0);
  EXPECT_EQ(RouteAllLive(policy, views), 1);
  EXPECT_EQ(RouteAllLive(policy, views), 2);
  EXPECT_EQ(RouteAllLive(policy, views), 0);
}

TEST(RoutingPolicyTest, RandomStaysInRangeAndIsSeedDeterministic) {
  cluster::RandomPolicy a(7);
  cluster::RandomPolicy b(7);
  const auto views = Views({0, 0, 0, 0}, {0, 0, 0, 0});
  for (int i = 0; i < 200; ++i) {
    const int choice = RouteAllLive(a, views);
    EXPECT_GE(choice, 0);
    EXPECT_LT(choice, 4);
    EXPECT_EQ(choice, RouteAllLive(b, views));
  }
}

TEST(RoutingPolicyTest, RandomCoversAllNodes) {
  cluster::RandomPolicy policy(3);
  const auto views = Views({0, 0, 0}, {0, 0, 0});
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 300; ++i) ++hits[RouteAllLive(policy, views)];
  for (int count : hits) EXPECT_GT(count, 0);
}

TEST(RoutingPolicyTest, JsqPicksLeastOccupied) {
  cluster::JoinShortestQueuePolicy policy;
  // Occupancy = active + gate_queue: node 2 has 3+0, others more.
  EXPECT_EQ(RouteAllLive(policy, Views({10, 5, 3}, {2, 4, 0})), 2);
  // Node 0 empties out.
  EXPECT_EQ(RouteAllLive(policy, Views({0, 5, 3}, {0, 4, 0})), 0);
}

TEST(RoutingPolicyTest, JsqRetractionPrefersGateHeadroom) {
  // Retracted work restarts from the gate queue, so the displacement-aware
  // variant routes it to admission headroom (limit - occupancy), not to the
  // shortest queue. Node 0: occupancy 5 against limit 10 (headroom 5).
  // Node 1: occupancy 8 against limit 50 (headroom 42).
  auto views = Views({5, 8}, {0, 0});
  views[0].limit = 10.0;
  cluster::AllLiveMembership membership(views);

  cluster::RouteContext retraction;
  retraction.is_retraction = true;
  cluster::JoinShortestQueuePolicy fresh;
  EXPECT_EQ(fresh.Route(membership.view(), cluster::RouteContext{}), 0);
  cluster::JoinShortestQueuePolicy retracting;
  EXPECT_EQ(retracting.Route(membership.view(), retraction), 1);

  // With equal limits the headroom argmax IS the occupancy argmin: the flag
  // cannot change routing on a homogeneous fleet (golden-run compatibility).
  const auto equal = Views({5, 8, 2}, {1, 0, 3});
  cluster::AllLiveMembership equal_membership(equal);
  for (int i = 0; i < 6; ++i) {
    cluster::JoinShortestQueuePolicy a;
    cluster::JoinShortestQueuePolicy b;
    for (int spin = 0; spin < i; ++spin) {
      a.Route(equal_membership.view(), cluster::RouteContext{});
      b.Route(equal_membership.view(), retraction);
    }
    EXPECT_EQ(a.Route(equal_membership.view(), cluster::RouteContext{}),
              b.Route(equal_membership.view(), retraction));
  }
}

TEST(RoutingPolicyTest, JsqBreaksTiesByRotation) {
  cluster::JoinShortestQueuePolicy policy;
  const auto tied = Views({1, 1, 1}, {0, 0, 0});
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 9; ++i) ++hits[RouteAllLive(policy, tied)];
  // The rotating preference spreads tied choices across all nodes.
  for (int count : hits) EXPECT_EQ(count, 3);
}

TEST(RoutingPolicyTest, ThresholdPrefersNodesUnderThreshold) {
  cluster::ThresholdPolicy::Config config;
  config.initial_threshold = 4.0;
  cluster::ThresholdPolicy policy(config);
  // Node 1 is the only one under the threshold.
  EXPECT_EQ(RouteAllLive(policy, Views({6, 2, 9}, {0, 0, 0})), 1);
}

TEST(RoutingPolicyTest, ThresholdLearnsUpUnderPressure) {
  cluster::ThresholdPolicy::Config config;
  config.initial_threshold = 2.0;
  cluster::ThresholdPolicy policy(config);
  // All nodes at/above the threshold: routes to the least occupied and
  // raises the threshold.
  const double before = policy.threshold();
  EXPECT_EQ(RouteAllLive(policy, Views({5, 3, 7}, {0, 0, 0})), 1);
  EXPECT_GT(policy.threshold(), before);
}

TEST(RoutingPolicyTest, ThresholdDecaysWhenLoadLeaves) {
  cluster::ThresholdPolicy::Config config;
  config.initial_threshold = 10.0;
  config.min_threshold = 2.0;
  cluster::ThresholdPolicy policy(config);
  const auto idle = Views({0, 0, 0}, {0, 0, 0});
  for (int i = 0; i < 50; ++i) RouteAllLive(policy, idle);
  EXPECT_DOUBLE_EQ(policy.threshold(), config.min_threshold);
}

// -------------------------------------------------------------- experiment --

/// Downscaled node so cluster tests stay fast (mirrors the experiment-test
/// SmallScenario).
core::ClusterNodeScenario SmallNode(uint64_t seed) {
  core::ClusterNodeScenario node;
  node.system.physical.num_cpus = 4;
  node.system.physical.cpu_init_mean = 0.001;
  node.system.physical.cpu_access_mean = 0.001;
  node.system.physical.cpu_commit_mean = 0.001;
  node.system.physical.cpu_write_commit_mean = 0.004;
  node.system.physical.io_time = 0.008;
  node.system.physical.restart_delay_mean = 0.02;
  node.system.logical.db_size = 600;
  node.system.logical.accesses_per_txn = 8;
  node.system.logical.query_fraction = 0.3;
  node.system.logical.write_fraction = 0.4;
  node.system.seed = seed;
  node.dynamics = db::WorkloadDynamics::FromConfig(node.system.logical);
  node.control.name = "parabola-approximation";
  node.control.measurement_interval = 0.5;
  node.control.initial_limit = 20.0;
  node.control.pa.initial_bound = 20.0;
  node.control.pa.min_bound = 2.0;
  node.control.pa.max_bound = 150.0;
  node.control.pa.dither = 5.0;
  return node;
}

core::ClusterScenarioConfig SmallCluster(int num_nodes, uint64_t seed = 17) {
  core::ClusterScenarioConfig scenario;
  for (int i = 0; i < num_nodes; ++i) {
    scenario.nodes.push_back(SmallNode(core::DecorrelatedNodeSeed(seed, i)));
  }
  scenario.seed = seed;
  scenario.arrival_rate = db::Schedule::Constant(80.0 * num_nodes);
  scenario.duration = 40.0;
  scenario.warmup = 10.0;
  return scenario;
}

TEST(ClusterExperimentTest, RunsAndCommitsOnEveryNode) {
  core::ClusterScenarioConfig scenario = SmallCluster(4);
  scenario.routing_name = "join-shortest-queue";
  const core::ClusterResult result = core::ClusterExperiment(scenario).Run();
  ASSERT_EQ(result.nodes.size(), 4u);
  EXPECT_GT(result.routed, 0u);
  uint64_t routed_sum = 0;
  for (const core::ClusterNodeResult& node : result.nodes) {
    EXPECT_GT(node.commits, 0u);
    EXPECT_GT(node.routed, 0u);
    EXPECT_FALSE(node.trajectory.empty());
    routed_sum += node.routed;
  }
  EXPECT_EQ(routed_sum, result.routed);
  EXPECT_GT(result.total_throughput, 0.0);
  EXPECT_GT(result.mean_response, 0.0);
  EXPECT_FALSE(result.aggregate.empty());
}

TEST(ClusterExperimentTest, EveryRoutingPolicyRuns) {
  // The placement-aware policies (power-of-d, locality, locality-threshold)
  // must also run on a placement-free cluster, where they degrade to
  // sampling or least-occupied routing over the full fleet.
  for (const char* routing :
       {"round-robin", "random", "join-shortest-queue", "threshold",
        "power-of-d", "locality", "locality-threshold"}) {
    core::ClusterScenarioConfig scenario = SmallCluster(3);
    scenario.duration = 20.0;
    scenario.warmup = 5.0;
    scenario.routing_name = routing;
    const core::ClusterResult result = core::ClusterExperiment(scenario).Run();
    EXPECT_GT(result.commits, 0u) << routing;
  }
}

TEST(ClusterExperimentTest, EveryControllerComposesWithRouting) {
  for (const char* controller :
       {"none", "fixed", "incremental-steps", "parabola-approximation",
        "golden-section"}) {
    core::ClusterScenarioConfig scenario = SmallCluster(2);
    scenario.duration = 20.0;
    scenario.warmup = 5.0;
    scenario.routing_name = "threshold";
    for (core::ClusterNodeScenario& node : scenario.nodes) {
      node.control.name = controller;
      node.control.fixed_limit = 20.0;
    }
    const core::ClusterResult result = core::ClusterExperiment(scenario).Run();
    EXPECT_GT(result.commits, 0u) << controller;
  }
}

void ExpectPointsBitIdentical(const core::TrajectoryPoint& a,
                              const core::TrajectoryPoint& b) {
  // Determinism contract: same config => bit-identical, not merely close.
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(core::TrajectoryPoint)), 0);
}

TEST(ClusterExperimentTest, FourNodeRunIsBitDeterministic) {
  core::ClusterScenarioConfig scenario = SmallCluster(4, 23);
  scenario.routing_name = "join-shortest-queue";
  const core::ClusterResult a = core::ClusterExperiment(scenario).Run();
  const core::ClusterResult b = core::ClusterExperiment(scenario).Run();
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.routed, b.routed);
  for (size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].commits, b.nodes[i].commits);
    EXPECT_EQ(a.nodes[i].routed, b.nodes[i].routed);
    ASSERT_EQ(a.nodes[i].trajectory.size(), b.nodes[i].trajectory.size());
    for (size_t t = 0; t < a.nodes[i].trajectory.size(); ++t) {
      ExpectPointsBitIdentical(a.nodes[i].trajectory[t],
                               b.nodes[i].trajectory[t]);
    }
  }
  ASSERT_EQ(a.aggregate.size(), b.aggregate.size());
  for (size_t t = 0; t < a.aggregate.size(); ++t) {
    ExpectPointsBitIdentical(a.aggregate[t], b.aggregate[t]);
  }
}

TEST(ClusterExperimentTest, SeedChangesOutcome) {
  core::ClusterScenarioConfig a = SmallCluster(2, 1);
  core::ClusterScenarioConfig b = SmallCluster(2, 2);
  a.duration = b.duration = 20.0;
  a.warmup = b.warmup = 5.0;
  EXPECT_NE(core::ClusterExperiment(a).Run().commits,
            core::ClusterExperiment(b).Run().commits);
}

TEST(ClusterExperimentTest, JsqShiftsLoadAwayFromDegradedNode) {
  core::ClusterScenarioConfig scenario = SmallCluster(2, 31);
  scenario.routing_name = "join-shortest-queue";
  // Node 0 loses 70% of its CPU speed for the whole run.
  scenario.nodes[0].cpu_speed = core::NodeSlowdownSchedule(0.3, 0.0, 1e9);
  const core::ClusterResult result = core::ClusterExperiment(scenario).Run();
  // The router observes the backlog on the slow node and sends the bulk of
  // the work to the healthy one.
  EXPECT_GT(result.nodes[1].routed, result.nodes[0].routed);
}

TEST(ClusterExperimentTest, HeterogeneousNodesAllowed) {
  core::ClusterScenarioConfig scenario = SmallCluster(3, 41);
  scenario.duration = 20.0;
  scenario.warmup = 5.0;
  scenario.routing_name = "join-shortest-queue";
  scenario.nodes[0].system.physical.num_cpus = 8;   // big node
  scenario.nodes[1].system.logical.db_size = 300;   // contended node
  scenario.nodes[2].system.cc = db::CcScheme::kTwoPhaseLocking;
  const core::ClusterResult result = core::ClusterExperiment(scenario).Run();
  for (const core::ClusterNodeResult& node : result.nodes) {
    EXPECT_GT(node.commits, 0u);
  }
}

TEST(ClusterMetricsTest, AggregateSumsExtensiveQuantities) {
  cluster::ClusterMetrics metrics(2);
  core::TrajectoryPoint a;
  a.time = 1.0;
  a.throughput = 10.0;
  a.response = 0.2;
  a.load = 5.0;
  a.bound = 20.0;
  a.gate_queue = 2.0;
  a.cpu_utilization = 0.5;
  core::TrajectoryPoint b = a;
  b.throughput = 30.0;
  b.response = 0.4;
  b.load = 15.0;
  metrics.AddPoint(0, a);
  metrics.AddPoint(1, b);
  const auto aggregate = metrics.Aggregate();
  ASSERT_EQ(aggregate.size(), 1u);
  EXPECT_DOUBLE_EQ(aggregate[0].throughput, 40.0);
  EXPECT_DOUBLE_EQ(aggregate[0].load, 20.0);
  EXPECT_DOUBLE_EQ(aggregate[0].bound, 40.0);
  EXPECT_DOUBLE_EQ(aggregate[0].gate_queue, 4.0);
  // Commit-weighted response: (10*0.2 + 30*0.4) / 40.
  EXPECT_DOUBLE_EQ(aggregate[0].response, 0.35);
  EXPECT_DOUBLE_EQ(aggregate[0].cpu_utilization, 0.5);
}

TEST(ClusterMetricsTest, AggregateTruncatesToShortestSeries) {
  cluster::ClusterMetrics metrics(2);
  core::TrajectoryPoint point;
  metrics.AddPoint(0, point);
  metrics.AddPoint(0, point);
  metrics.AddPoint(1, point);
  EXPECT_EQ(metrics.Aggregate().size(), 1u);
}

TEST(UniformClusterTest, DecorrelatesNodeSeeds) {
  core::ScenarioConfig base = core::DefaultScenario();
  base.system.seed = 99;
  const core::ClusterScenarioConfig scenario = core::UniformCluster(4, base);
  ASSERT_EQ(scenario.nodes.size(), 4u);
  for (size_t i = 0; i < scenario.nodes.size(); ++i) {
    for (size_t j = i + 1; j < scenario.nodes.size(); ++j) {
      EXPECT_NE(scenario.nodes[i].system.seed, scenario.nodes[j].system.seed);
    }
  }
  // Node seeds must not form an arithmetic progression: the system derives
  // its internal streams by adding fixed offsets to its seed, so a constant
  // stride would alias one node's stream onto a neighbor's.
  EXPECT_NE(scenario.nodes[1].system.seed - scenario.nodes[0].system.seed,
            scenario.nodes[2].system.seed - scenario.nodes[1].system.seed);
  EXPECT_EQ(scenario.seed, 99u);
}

}  // namespace
}  // namespace alc
