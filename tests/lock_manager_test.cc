#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/metrics.h"
#include "db/two_phase_locking.h"
#include "sim/simulator.h"

namespace alc::db {
namespace {

class LockManagerTest : public ::testing::Test {
 protected:
  LockManagerTest() : db_(50), lm_(&db_, &metrics_, &sim_) {
    metrics_.blocked_track.Start(0.0, 0.0);
    lm_.SetAbortHook([this](Transaction* txn, AbortReason reason) {
      victims_.push_back(txn);
      reasons_.push_back(reason);
      // Release the victim's locks as the system's abort path would.
      lm_.OnAbort(txn);
    });
  }

  Transaction MakeTxn(TxnId id, double start_time = 0.0) {
    Transaction txn;
    txn.id = id;
    txn.attempt_start_time = start_time;
    txn.state = TxnState::kRunning;
    return txn;
  }

  /// Requests lock for txn's access `index`; counts grants via flags.
  void Request(Transaction* txn, int index, bool* granted) {
    lm_.RequestAccess(txn, index, [granted] { *granted = true; });
  }

  void Plan(Transaction* txn, std::vector<ItemId> items,
            std::vector<AccessMode> modes) {
    txn->access_items = std::move(items);
    txn->access_modes = std::move(modes);
  }

  sim::Simulator sim_;
  Database db_;
  Metrics metrics_;
  LockManager lm_;
  std::vector<Transaction*> victims_;
  std::vector<AbortReason> reasons_;
};

TEST_F(LockManagerTest, SharedLocksAreCompatible) {
  Transaction a = MakeTxn(1), b = MakeTxn(2);
  Plan(&a, {7}, {AccessMode::kRead});
  Plan(&b, {7}, {AccessMode::kRead});
  bool ga = false, gb = false;
  Request(&a, 0, &ga);
  Request(&b, 0, &gb);
  EXPECT_TRUE(ga);
  EXPECT_TRUE(gb);
  EXPECT_EQ(lm_.NumHolders(7), 2);
  EXPECT_EQ(lm_.num_blocked(), 0);
}

TEST_F(LockManagerTest, ExclusiveBlocksReader) {
  Transaction w = MakeTxn(1), r = MakeTxn(2);
  Plan(&w, {3}, {AccessMode::kWrite});
  Plan(&r, {3}, {AccessMode::kRead});
  bool gw = false, gr = false;
  Request(&w, 0, &gw);
  Request(&r, 0, &gr);
  EXPECT_TRUE(gw);
  EXPECT_FALSE(gr);
  EXPECT_EQ(lm_.num_blocked(), 1);
  EXPECT_EQ(r.state, TxnState::kBlocked);
  EXPECT_EQ(r.blocked_on, 3);

  // Commit releases and the reader is granted (deferred via simulator).
  lm_.OnCommit(&w);
  sim_.RunAll();
  EXPECT_TRUE(gr);
  EXPECT_EQ(lm_.num_blocked(), 0);
  EXPECT_EQ(r.state, TxnState::kRunning);
}

TEST_F(LockManagerTest, ReaderBlocksWriter) {
  Transaction r = MakeTxn(1), w = MakeTxn(2);
  Plan(&r, {3}, {AccessMode::kRead});
  Plan(&w, {3}, {AccessMode::kWrite});
  bool gr = false, gw = false;
  Request(&r, 0, &gr);
  Request(&w, 0, &gw);
  EXPECT_TRUE(gr);
  EXPECT_FALSE(gw);
  lm_.OnCommit(&r);
  sim_.RunAll();
  EXPECT_TRUE(gw);
}

TEST_F(LockManagerTest, FifoNoOvertaking) {
  // S behind a queued X must wait even though holders are readers.
  Transaction r1 = MakeTxn(1), w = MakeTxn(2), r2 = MakeTxn(3);
  Plan(&r1, {5}, {AccessMode::kRead});
  Plan(&w, {5}, {AccessMode::kWrite});
  Plan(&r2, {5}, {AccessMode::kRead});
  bool g1 = false, g2 = false, g3 = false;
  Request(&r1, 0, &g1);
  Request(&w, 0, &g2);
  Request(&r2, 0, &g3);
  EXPECT_TRUE(g1);
  EXPECT_FALSE(g2);
  EXPECT_FALSE(g3);  // would be compatible with r1, but FIFO forbids
  EXPECT_EQ(lm_.NumWaiters(5), 2);

  lm_.OnCommit(&r1);
  sim_.RunAll();
  EXPECT_TRUE(g2);   // writer first
  EXPECT_FALSE(g3);  // reader still behind the writer
  lm_.OnCommit(&w);
  sim_.RunAll();
  EXPECT_TRUE(g3);
}

TEST_F(LockManagerTest, HeadRunOfCompatibleReadersGrantedTogether) {
  Transaction w = MakeTxn(1), r1 = MakeTxn(2), r2 = MakeTxn(3);
  Plan(&w, {4}, {AccessMode::kWrite});
  Plan(&r1, {4}, {AccessMode::kRead});
  Plan(&r2, {4}, {AccessMode::kRead});
  bool gw = false, g1 = false, g2 = false;
  Request(&w, 0, &gw);
  Request(&r1, 0, &g1);
  Request(&r2, 0, &g2);
  lm_.OnCommit(&w);
  sim_.RunAll();
  EXPECT_TRUE(g1);
  EXPECT_TRUE(g2);  // both readers at the head granted in one sweep
  EXPECT_EQ(lm_.NumHolders(4), 2);
}

TEST_F(LockManagerTest, MultiItemReleaseCascades) {
  Transaction holder = MakeTxn(1);
  Plan(&holder, {1, 2}, {AccessMode::kWrite, AccessMode::kWrite});
  bool h1 = false, h2 = false;
  Request(&holder, 0, &h1);
  Request(&holder, 1, &h2);
  ASSERT_TRUE(h1 && h2);

  Transaction w1 = MakeTxn(2), w2 = MakeTxn(3);
  Plan(&w1, {1}, {AccessMode::kWrite});
  Plan(&w2, {2}, {AccessMode::kWrite});
  bool g1 = false, g2 = false;
  Request(&w1, 0, &g1);
  Request(&w2, 0, &g2);
  EXPECT_EQ(lm_.num_blocked(), 2);

  lm_.OnCommit(&holder);
  sim_.RunAll();
  EXPECT_TRUE(g1);
  EXPECT_TRUE(g2);
  EXPECT_TRUE(holder.held_locks.empty());
}

TEST_F(LockManagerTest, TwoTransactionDeadlockAbortsYoungest) {
  Transaction old_txn = MakeTxn(1, /*start_time=*/1.0);
  Transaction young_txn = MakeTxn(2, /*start_time=*/5.0);
  Plan(&old_txn, {10, 11}, {AccessMode::kWrite, AccessMode::kWrite});
  Plan(&young_txn, {11, 10}, {AccessMode::kWrite, AccessMode::kWrite});

  bool go0 = false, gy0 = false, go1 = false, gy1 = false;
  Request(&old_txn, 0, &go0);   // old holds 10
  Request(&young_txn, 0, &gy0); // young holds 11
  ASSERT_TRUE(go0 && gy0);

  Request(&old_txn, 1, &go1);   // old waits for 11 (held by young)
  EXPECT_FALSE(go1);
  EXPECT_TRUE(victims_.empty());

  Request(&young_txn, 1, &gy1); // young waits for 10: cycle
  EXPECT_EQ(victims_.size(), 1u);
  EXPECT_EQ(victims_[0], &young_txn);
  EXPECT_EQ(reasons_[0], AbortReason::kDeadlock);
  EXPECT_EQ(lm_.deadlocks_detected(), 1u);

  // The victim's locks were released, so the old transaction proceeds.
  sim_.RunAll();
  EXPECT_TRUE(go1);
}

TEST_F(LockManagerTest, ThreeTransactionCycleDetected) {
  Transaction a = MakeTxn(1, 1.0), b = MakeTxn(2, 2.0), c = MakeTxn(3, 3.0);
  Plan(&a, {20, 21}, {AccessMode::kWrite, AccessMode::kWrite});
  Plan(&b, {21, 22}, {AccessMode::kWrite, AccessMode::kWrite});
  Plan(&c, {22, 20}, {AccessMode::kWrite, AccessMode::kWrite});
  bool ga = false, gb = false, gc = false;
  Request(&a, 0, &ga);
  Request(&b, 0, &gb);
  Request(&c, 0, &gc);
  ASSERT_TRUE(ga && gb && gc);

  bool wa = false, wb = false, wc = false;
  Request(&a, 1, &wa);  // a -> b
  Request(&b, 1, &wb);  // b -> c
  EXPECT_TRUE(victims_.empty());
  Request(&c, 1, &wc);  // c -> a closes the cycle
  ASSERT_EQ(victims_.size(), 1u);
  EXPECT_EQ(victims_[0], &c);  // youngest in the cycle
  sim_.RunAll();
  // a was waiting on 21 held by b; b waiting on 22 held by c - released.
  EXPECT_TRUE(wb);
  lm_.OnCommit(&b);
  sim_.RunAll();
  EXPECT_TRUE(wa);
}

TEST_F(LockManagerTest, NoFalseDeadlockOnSharedChain) {
  // Two readers waiting behind one writer is not a deadlock.
  Transaction w = MakeTxn(1, 1.0), r1 = MakeTxn(2, 2.0), r2 = MakeTxn(3, 3.0);
  Plan(&w, {8}, {AccessMode::kWrite});
  Plan(&r1, {8}, {AccessMode::kRead});
  Plan(&r2, {8}, {AccessMode::kRead});
  bool gw = false, g1 = false, g2 = false;
  Request(&w, 0, &gw);
  Request(&r1, 0, &g1);
  Request(&r2, 0, &g2);
  EXPECT_TRUE(victims_.empty());
  EXPECT_EQ(lm_.deadlocks_detected(), 0u);
}

TEST_F(LockManagerTest, CancelWaitingRemovesFromQueue) {
  Transaction w = MakeTxn(1), waiter = MakeTxn(2), after = MakeTxn(3);
  Plan(&w, {6}, {AccessMode::kWrite});
  Plan(&waiter, {6}, {AccessMode::kWrite});
  Plan(&after, {6}, {AccessMode::kWrite});
  bool gw = false, gwait = false, gafter = false;
  Request(&w, 0, &gw);
  Request(&waiter, 0, &gwait);
  Request(&after, 0, &gafter);
  EXPECT_EQ(lm_.NumWaiters(6), 2);

  lm_.CancelWaiting(&waiter);
  EXPECT_EQ(lm_.NumWaiters(6), 1);
  EXPECT_EQ(waiter.blocked_on, -1);
  EXPECT_EQ(lm_.num_blocked(), 1);

  lm_.OnCommit(&w);
  sim_.RunAll();
  EXPECT_FALSE(gwait);  // cancelled: never granted
  EXPECT_TRUE(gafter);
}

TEST_F(LockManagerTest, CancelHeadWaiterUnblocksRun) {
  // Cancelling a queued writer at the head lets compatible readers through.
  Transaction r0 = MakeTxn(1), w = MakeTxn(2), r1 = MakeTxn(3);
  Plan(&r0, {9}, {AccessMode::kRead});
  Plan(&w, {9}, {AccessMode::kWrite});
  Plan(&r1, {9}, {AccessMode::kRead});
  bool g0 = false, gw = false, g1 = false;
  Request(&r0, 0, &g0);
  Request(&w, 0, &gw);
  Request(&r1, 0, &g1);
  ASSERT_TRUE(g0);
  ASSERT_FALSE(g1);
  lm_.CancelWaiting(&w);
  sim_.RunAll();
  EXPECT_TRUE(g1);  // reader joins the reader holder
  EXPECT_EQ(lm_.NumHolders(9), 2);
}

TEST_F(LockManagerTest, LockCountersTrackRequestsAndWaits) {
  Transaction a = MakeTxn(1), b = MakeTxn(2);
  Plan(&a, {2}, {AccessMode::kWrite});
  Plan(&b, {2}, {AccessMode::kWrite});
  bool ga = false, gb = false;
  Request(&a, 0, &ga);
  Request(&b, 0, &gb);
  EXPECT_EQ(metrics_.counters.lock_requests, 2u);
  EXPECT_EQ(metrics_.counters.lock_waits, 1u);
}

TEST_F(LockManagerTest, CertifyCommitAlwaysTrue) {
  Transaction txn = MakeTxn(1);
  EXPECT_TRUE(lm_.CertifyCommit(&txn));
}

TEST_F(LockManagerTest, AbortReleasesLocks) {
  Transaction a = MakeTxn(1), b = MakeTxn(2);
  Plan(&a, {30}, {AccessMode::kWrite});
  Plan(&b, {30}, {AccessMode::kWrite});
  bool ga = false, gb = false;
  Request(&a, 0, &ga);
  Request(&b, 0, &gb);
  ASSERT_TRUE(ga);
  ASSERT_FALSE(gb);
  lm_.OnAbort(&a);
  sim_.RunAll();
  EXPECT_TRUE(gb);
}

}  // namespace
}  // namespace alc::db
