#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "control/gate.h"
#include "control/monitor.h"
#include "db/system.h"
#include "sim/simulator.h"

namespace alc::control {
namespace {

db::SystemConfig SmallConfig(uint64_t seed = 3) {
  db::SystemConfig config;
  config.physical.num_terminals = 50;
  config.physical.think_time_mean = 0.05;  // load-heavy: active n can reach 30+
  config.physical.num_cpus = 4;
  config.physical.cpu_init_mean = 0.001;
  config.physical.cpu_access_mean = 0.001;
  config.physical.cpu_commit_mean = 0.001;
  config.physical.cpu_write_commit_mean = 0.002;
  config.physical.io_time = 0.005;
  config.physical.restart_delay_mean = 0.01;
  config.logical.db_size = 300;
  config.logical.accesses_per_txn = 6;
  config.seed = seed;
  return config;
}

TEST(GateTest, NeverExceedsCeilOfLimit) {
  sim::Simulator sim;
  db::TransactionSystem system(&sim, SmallConfig());
  AdmissionGate gate(&system, 8.0);
  system.Start();
  int max_seen = 0;
  for (double t = 0.5; t < 15.0; t += 0.1) {
    sim.ScheduleAt(t, [&] { max_seen = std::max(max_seen, system.active()); });
  }
  sim.RunUntil(15.0);
  EXPECT_LE(max_seen, 8);
  EXPECT_GT(max_seen, 4);  // the limit is actually reached
  EXPECT_GT(gate.queue_length(), 0);  // overload queues at the gate
}

TEST(GateTest, FractionalLimitFixedPointIsCeil) {
  sim::Simulator sim;
  db::TransactionSystem system(&sim, SmallConfig());
  AdmissionGate gate(&system, 5.4);
  system.Start();
  int max_seen = 0;
  for (double t = 0.5; t < 10.0; t += 0.1) {
    sim.ScheduleAt(t, [&] { max_seen = std::max(max_seen, system.active()); });
  }
  sim.RunUntil(10.0);
  EXPECT_LE(max_seen, 6);  // ceil(5.4)
}

TEST(GateTest, RaisingLimitAdmitsQueued) {
  sim::Simulator sim;
  db::TransactionSystem system(&sim, SmallConfig());
  AdmissionGate gate(&system, 2.0);
  system.Start();
  sim.RunUntil(5.0);
  ASSERT_GT(gate.queue_length(), 10);
  sim.ScheduleAt(5.0, [&] { gate.SetLimit(40.0); });
  sim.RunUntil(5.5);
  EXPECT_LE(gate.queue_length(), 12);  // most of the queue drained
  EXPECT_GT(system.active(), 20);
}

TEST(GateTest, LoweringWithoutDisplacementDrainsByDepartures) {
  sim::Simulator sim;
  db::TransactionSystem system(&sim, SmallConfig());
  AdmissionGate gate(&system, 30.0);
  system.Start();
  sim.RunUntil(5.0);
  const int before = system.active();
  ASSERT_GT(before, 20);
  sim.ScheduleAt(5.0, [&] { gate.SetLimit(5.0); });
  sim.RunUntil(5.01);
  // No displacement: still above the new limit right after the change...
  EXPECT_GT(system.active(), 5);
  EXPECT_EQ(gate.total_displaced(), 0u);
  sim.RunUntil(15.0);
  // ...but normal departures eventually drain to the bound.
  EXPECT_LE(system.active(), 6);
}

TEST(GateTest, LoweringWithDisplacementEnforcesImmediately) {
  sim::Simulator sim;
  db::TransactionSystem system(&sim, SmallConfig());
  AdmissionGate gate(&system, 30.0);
  gate.EnableDisplacement(true);
  system.Start();
  sim.RunUntil(5.0);
  ASSERT_GT(system.active(), 20);
  sim.ScheduleAt(5.0, [&] { gate.SetLimit(5.0); });
  // Displacement of blocked/restart-waiting txns is synchronous; running
  // ones abort at their next phase boundary (sub-0.1s at these service
  // times).
  sim.RunUntil(5.5);
  EXPECT_LE(system.active(), 6);
  EXPECT_GT(gate.total_displaced(), 0u);
  EXPECT_GT(system.metrics().counters.aborts_displacement, 0u);
}

TEST(GateTest, DisplacedTransactionsReadmittedWhenLimitRises) {
  sim::Simulator sim;
  db::TransactionSystem system(&sim, SmallConfig());
  AdmissionGate gate(&system, 20.0);
  gate.EnableDisplacement(true);
  system.Start();
  sim.RunUntil(3.0);
  sim.ScheduleAt(3.0, [&] { gate.SetLimit(3.0); });
  sim.RunUntil(6.0);
  const uint64_t commits_before = system.metrics().counters.commits;
  sim.ScheduleAt(6.0, [&] { gate.SetLimit(20.0); });
  sim.RunUntil(12.0);
  // System recovered: commits continue after re-admission.
  EXPECT_GT(system.metrics().counters.commits, commits_before + 50);
}

TEST(GateTest, FcfsOrderPreserved) {
  sim::Simulator sim;
  db::TransactionSystem system(&sim, SmallConfig());
  AdmissionGate gate(&system, 1.0);  // serialize admissions
  std::vector<db::TxnId> admitted_order;
  // Wrap the system's departure hook is taken by the gate; observe via
  // admit_time ordering instead: with limit 1 the admit times are strictly
  // increasing in queue order.
  system.Start();
  sim.RunUntil(10.0);
  EXPECT_GT(system.metrics().counters.commits, 10u);
  EXPECT_LE(system.active(), 1);
}

TEST(MonitorTest, SamplesAtConfiguredInterval) {
  sim::Simulator sim;
  db::TransactionSystem system(&sim, SmallConfig());
  Monitor monitor(&sim, &system, 0.5);
  int ticks = 0;
  monitor.SetCallback([&](const Sample& sample) {
    ++ticks;
    EXPECT_NEAR(sample.interval, 0.5, 1e-9);
  });
  system.Start();
  monitor.Start();
  sim.RunUntil(10.0);
  EXPECT_EQ(ticks, 20);
  EXPECT_EQ(monitor.samples().size(), 20u);
}

TEST(MonitorTest, IntervalCommitsSumToTotal) {
  sim::Simulator sim;
  db::TransactionSystem system(&sim, SmallConfig());
  Monitor monitor(&sim, &system, 1.0);
  long long sum = 0;
  monitor.SetCallback([&](const Sample& sample) { sum += sample.commits; });
  system.Start();
  monitor.Start();
  sim.RunUntil(10.0);
  // All commits before the last tick are accounted exactly once.
  EXPECT_LE(static_cast<uint64_t>(sum), system.metrics().counters.commits);
  sim.RunUntil(10.5);
  const uint64_t at_last_tick = sum;
  EXPECT_GT(at_last_tick, 0u);
}

TEST(MonitorTest, ThroughputMatchesCommitDeltas) {
  sim::Simulator sim;
  db::TransactionSystem system(&sim, SmallConfig());
  Monitor monitor(&sim, &system, 2.0);
  std::vector<Sample> samples;
  monitor.SetCallback([&](const Sample& s) { samples.push_back(s); });
  system.Start();
  monitor.Start();
  sim.RunUntil(20.0);
  ASSERT_GE(samples.size(), 5u);
  for (const Sample& s : samples) {
    EXPECT_NEAR(s.throughput, s.commits / s.interval, 1e-9);
    EXPECT_GE(s.mean_active, 0.0);
    EXPECT_GE(s.cpu_utilization, 0.0);
    EXPECT_LE(s.cpu_utilization, 1.0 + 1e-9);
  }
}

TEST(MonitorTest, MeanActiveReflectsAdmittedLoad) {
  sim::Simulator sim;
  db::TransactionSystem system(&sim, SmallConfig());
  AdmissionGate gate(&system, 5.0);
  Monitor monitor(&sim, &system, 1.0);
  std::vector<Sample> samples;
  monitor.SetCallback([&](const Sample& s) { samples.push_back(s); });
  system.Start();
  monitor.Start();
  sim.RunUntil(10.0);
  // After warmup the time-averaged load must hover at the limit.
  ASSERT_GE(samples.size(), 10u);
  for (size_t i = 4; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].mean_active, 3.0);
    EXPECT_LE(samples[i].mean_active, 5.0 + 1e-9);
  }
}

TEST(MonitorTest, SetIntervalTakesEffect) {
  sim::Simulator sim;
  db::TransactionSystem system(&sim, SmallConfig());
  Monitor monitor(&sim, &system, 1.0);
  std::vector<double> tick_times;
  monitor.SetCallback([&](const Sample& s) {
    tick_times.push_back(s.time);
    if (tick_times.size() == 3) monitor.SetInterval(2.0);
  });
  system.Start();
  monitor.Start();
  sim.RunUntil(11.0);
  // Ticks at 1,2,3 then 5,7,9,11.
  ASSERT_GE(tick_times.size(), 6u);
  EXPECT_DOUBLE_EQ(tick_times[0], 1.0);
  EXPECT_DOUBLE_EQ(tick_times[2], 3.0);
  EXPECT_DOUBLE_EQ(tick_times[3], 5.0);
  EXPECT_DOUBLE_EQ(tick_times[4], 7.0);
}

TEST(MonitorTest, ConflictRateCountsAbortsPerCommit) {
  sim::Simulator sim;
  db::SystemConfig config = SmallConfig();
  config.logical.db_size = 25;
  config.logical.write_fraction = 0.9;
  db::TransactionSystem system(&sim, config);
  Monitor monitor(&sim, &system, 2.0);
  double total_conflict_rate = 0.0;
  int ticks = 0;
  monitor.SetCallback([&](const Sample& s) {
    total_conflict_rate += s.conflict_rate;
    ++ticks;
  });
  system.Start();
  monitor.Start();
  sim.RunUntil(20.0);
  ASSERT_GT(ticks, 0);
  EXPECT_GT(total_conflict_rate / ticks, 0.05);  // real contention measured
}

TEST(MonitorTest, UsefulCpuFractionDropsUnderContention) {
  auto run = [](uint32_t db_size) {
    sim::Simulator sim;
    db::SystemConfig config = SmallConfig();
    config.logical.db_size = db_size;
    config.logical.write_fraction = 0.8;
    db::TransactionSystem system(&sim, config);
    Monitor monitor(&sim, &system, 2.0);
    double sum = 0.0;
    int n = 0;
    monitor.SetCallback([&](const Sample& s) {
      sum += s.useful_cpu_fraction;
      ++n;
    });
    system.Start();
    monitor.Start();
    sim.RunUntil(20.0);
    return sum / n;
  };
  EXPECT_LT(run(20), run(5000));  // tiny database wastes more CPU on reruns
}

}  // namespace
}  // namespace alc::control
