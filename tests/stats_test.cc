#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sim/random.h"
#include "sim/stats.h"

namespace alc::sim {
namespace {

TEST(WelfordTest, EmptyAccumulator) {
  WelfordAccumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(WelfordTest, SingleValue) {
  WelfordAccumulator acc;
  acc.Add(7.5);
  EXPECT_EQ(acc.count(), 1);
  EXPECT_DOUBLE_EQ(acc.mean(), 7.5);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 7.5);
  EXPECT_EQ(acc.max(), 7.5);
}

TEST(WelfordTest, MatchesClosedForm) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  WelfordAccumulator acc;
  for (double x : xs) acc.Add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
}

TEST(WelfordTest, NumericallyStableForLargeOffsets) {
  // Classic catastrophic-cancellation case: large mean, small variance.
  WelfordAccumulator acc;
  const double offset = 1e9;
  for (double x : {offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0}) {
    acc.Add(x);
  }
  EXPECT_NEAR(acc.mean(), offset + 10.0, 1e-3);
  EXPECT_NEAR(acc.variance(), 30.0, 1e-6);
}

TEST(WelfordTest, ResetClears) {
  WelfordAccumulator acc;
  acc.Add(1.0);
  acc.Add(2.0);
  acc.Reset();
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.mean(), 0.0);
}

TEST(TimeWeightedAverageTest, ConstantValue) {
  TimeWeightedAverage twa;
  twa.Start(0.0, 5.0);
  EXPECT_DOUBLE_EQ(twa.AverageUntil(10.0), 5.0);
}

TEST(TimeWeightedAverageTest, StepChange) {
  TimeWeightedAverage twa;
  twa.Start(0.0, 0.0);
  twa.Update(4.0, 10.0);  // 0 for 4s, then 10 for 6s
  EXPECT_DOUBLE_EQ(twa.AverageUntil(10.0), 6.0);
}

TEST(TimeWeightedAverageTest, MultipleUpdates) {
  TimeWeightedAverage twa;
  twa.Start(0.0, 1.0);
  twa.Update(1.0, 2.0);
  twa.Update(3.0, 3.0);
  // 1*1 + 2*2 + 3*1 over 4s = 8/4.
  EXPECT_DOUBLE_EQ(twa.AverageUntil(4.0), 2.0);
}

TEST(TimeWeightedAverageTest, WindowResetRestartsAccumulation) {
  TimeWeightedAverage twa;
  twa.Start(0.0, 4.0);
  twa.Update(2.0, 8.0);
  EXPECT_DOUBLE_EQ(twa.AverageUntil(4.0), 6.0);
  twa.ResetWindow(4.0);
  // New window sees only the current value (8).
  EXPECT_DOUBLE_EQ(twa.AverageUntil(6.0), 8.0);
}

TEST(TimeWeightedAverageTest, ZeroSpanReturnsCurrentValue) {
  TimeWeightedAverage twa;
  twa.Start(5.0, 3.0);
  EXPECT_DOUBLE_EQ(twa.AverageUntil(5.0), 3.0);
}

TEST(TimeWeightedAverageTest, SameTimeUpdates) {
  TimeWeightedAverage twa;
  twa.Start(0.0, 1.0);
  twa.Update(2.0, 5.0);
  twa.Update(2.0, 9.0);  // instantaneous double update
  // 1 for 2s, then 9 for 2s.
  EXPECT_DOUBLE_EQ(twa.AverageUntil(4.0), 5.0);
}

TEST(BatchMeansTest, MeanOfAllObservations) {
  BatchMeans bm(10);
  for (int i = 1; i <= 100; ++i) bm.Add(i);
  EXPECT_EQ(bm.num_batches(), 10);
  EXPECT_DOUBLE_EQ(bm.mean(), 50.5);
}

TEST(BatchMeansTest, HalfWidthZeroWithFewBatches) {
  BatchMeans bm(10);
  for (int i = 0; i < 15; ++i) bm.Add(1.0);
  EXPECT_EQ(bm.num_batches(), 1);
  EXPECT_EQ(bm.HalfWidth(0.95), 0.0);
}

TEST(BatchMeansTest, ConstantSeriesHasZeroWidth) {
  BatchMeans bm(5);
  for (int i = 0; i < 50; ++i) bm.Add(3.0);
  EXPECT_EQ(bm.HalfWidth(0.95), 0.0);
  EXPECT_DOUBLE_EQ(bm.mean(), 3.0);
}

TEST(BatchMeansTest, CoverageOnIidNormal) {
  // For iid data the 95% CI should contain the true mean ~95% of the time.
  RandomStream rng(101);
  int covered = 0;
  const int reps = 300;
  for (int rep = 0; rep < reps; ++rep) {
    BatchMeans bm(20);
    for (int i = 0; i < 600; ++i) bm.Add(rng.NextNormal(10.0, 3.0));
    const double half = bm.HalfWidth(0.95);
    if (std::fabs(bm.mean() - 10.0) <= half) ++covered;
  }
  const double coverage = static_cast<double>(covered) / reps;
  EXPECT_GT(coverage, 0.88);
  EXPECT_LE(coverage, 1.0);
}

TEST(BatchMeansTest, HalfWidthShrinksWithData) {
  RandomStream rng(103);
  BatchMeans small(10);
  BatchMeans large(10);
  for (int i = 0; i < 100; ++i) small.Add(rng.NextNormal(0.0, 1.0));
  for (int i = 0; i < 10000; ++i) large.Add(rng.NextNormal(0.0, 1.0));
  EXPECT_LT(large.HalfWidth(0.95), small.HalfWidth(0.95));
}

TEST(HistogramTest, BinningAndCounts) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.7);
  h.Add(9.99);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.bins()[0], 1);
  EXPECT_EQ(h.bins()[1], 2);
  EXPECT_EQ(h.bins()[9], 1);
}

TEST(HistogramTest, OutOfRangeClampedAndCounted) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-1.0);
  h.Add(42.0);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.bins()[0], 1);
  EXPECT_EQ(h.bins()[4], 1);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(2.0, 12.0, 5);
  EXPECT_DOUBLE_EQ(h.BinLow(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BinHigh(0), 4.0);
  EXPECT_DOUBLE_EQ(h.BinLow(4), 10.0);
  EXPECT_DOUBLE_EQ(h.BinHigh(4), 12.0);
}

TEST(HistogramTest, QuantileOnUniformData) {
  Histogram h(0.0, 1.0, 100);
  RandomStream rng(107);
  for (int i = 0; i < 100000; ++i) h.Add(rng.NextDouble());
  EXPECT_NEAR(h.Quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.Quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.Quantile(0.1), 0.1, 0.02);
}

TEST(HistogramTest, QuantileEmptyReturnsLow) {
  Histogram h(5.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
}

}  // namespace
}  // namespace alc::sim
