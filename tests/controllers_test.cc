#include <cmath>

#include <gtest/gtest.h>

#include "control/fixed.h"
#include "control/incremental_steps.h"
#include "control/interval_advisor.h"
#include "control/parabola.h"
#include "control/rules.h"
#include "control/sample.h"

namespace alc::control {
namespace {

Sample MakeSample(double load, double throughput, double time = 0.0) {
  Sample sample;
  sample.time = time;
  sample.interval = 1.0;
  sample.throughput = throughput;
  sample.mean_active = load;
  sample.mean_response = throughput > 0.0 ? load / throughput : 0.0;
  sample.commits = static_cast<long long>(throughput);
  return sample;
}

TEST(PerformanceValueTest, SelectsConfiguredIndex) {
  Sample sample;
  sample.throughput = 100.0;
  sample.mean_response = 0.25;
  sample.cpu_utilization = 0.8;
  sample.useful_cpu_fraction = 0.5;
  EXPECT_DOUBLE_EQ(PerformanceValue(sample, PerformanceIndex::kThroughput),
                   100.0);
  EXPECT_DOUBLE_EQ(
      PerformanceValue(sample, PerformanceIndex::kInverseResponseTime), 4.0);
  EXPECT_DOUBLE_EQ(
      PerformanceValue(sample, PerformanceIndex::kEffectiveCpuUtilization),
      0.4);
}

TEST(FixedControllersTest, Basics) {
  NoControlController none;
  EXPECT_GT(none.Update(MakeSample(10, 10)), 1e8);
  EXPECT_EQ(none.name(), "none");

  FixedLimitController fixed(42.0);
  EXPECT_DOUBLE_EQ(fixed.Update(MakeSample(100, 5)), 42.0);
  fixed.Reset(10.0);
  EXPECT_DOUBLE_EQ(fixed.bound(), 10.0);
}

class IsTest : public ::testing::Test {
 protected:
  IsConfig DefaultConfig() {
    IsConfig config;
    config.beta = 1.0;
    config.gamma = 5.0;
    config.delta = 10.0;
    config.initial_bound = 100.0;
    config.min_bound = 10.0;
    config.max_bound = 500.0;
    return config;
  }
};

TEST_F(IsTest, FirstUpdateProbesUpward) {
  IncrementalStepsController is(DefaultConfig());
  const double next = is.Update(MakeSample(100.0, 50.0));
  EXPECT_DOUBLE_EQ(next, 105.0);  // +gamma exploratory step
}

TEST_F(IsTest, ContinuesDirectionWhilePerformanceRises) {
  IncrementalStepsController is(DefaultConfig());
  is.Update(MakeSample(100.0, 50.0));  // bound 105, direction +
  // P rose by 10 with load tracking the bound: next = 105 + 1*10*sign(+5).
  const double next = is.Update(MakeSample(105.0, 60.0));
  EXPECT_DOUBLE_EQ(next, 115.0);
}

TEST_F(IsTest, ReversesWhenPerformanceDrops) {
  IncrementalStepsController is(DefaultConfig());
  is.Update(MakeSample(100.0, 50.0));   // bound 105, moved up
  is.Update(MakeSample(105.0, 60.0));   // bound 115, moved up
  // Performance fell by 20: delta-P negative, direction was +, so the bound
  // moves down by beta*|dP|.
  const double next = is.Update(MakeSample(115.0, 40.0));
  EXPECT_DOUBLE_EQ(next, 95.0);
}

TEST_F(IsTest, ZigZagClimbsToOptimum) {
  // Deterministic unimodal response: P(n) = 200 - (n - 60)^2 / 10. The gain
  // beta must suit the curvature (beta * d2P/dn2 < 1); an overdriven IS
  // oscillates and slams into its static bounds — the instability section
  // 5.1 warns about.
  IsConfig config = DefaultConfig();
  config.initial_bound = 20.0;
  config.beta = 0.05;
  IncrementalStepsController is(config);
  double bound = config.initial_bound;
  for (int i = 0; i < 300; ++i) {
    const double load = bound;  // closed system tracks the bound
    const double perf = 200.0 - (load - 60.0) * (load - 60.0) / 10.0;
    bound = is.Update(MakeSample(load, perf));
  }
  EXPECT_NEAR(bound, 60.0, 15.0);
}

TEST_F(IsTest, EscapesExactlyFlatPlateau) {
  // With a deterministic flat response IS would compute zero steps forever;
  // the implementation probes upward instead.
  IncrementalStepsController is(DefaultConfig());
  double bound = 100.0;
  for (int i = 0; i < 10; ++i) {
    bound = is.Update(MakeSample(bound, 50.0));
  }
  EXPECT_GT(bound, 105.0);
}

TEST_F(IsTest, DriftPullRaisesBoundTowardLoad) {
  IncrementalStepsController is(DefaultConfig());
  is.Update(MakeSample(100.0, 50.0));  // bound 105
  // Load far above bound (|n*-n| > delta, n* < n): +gamma branch.
  const double next = is.Update(MakeSample(200.0, 50.0));
  EXPECT_DOUBLE_EQ(next, 110.0);
}

TEST_F(IsTest, DriftPullLowersBoundTowardLoad) {
  IncrementalStepsController is(DefaultConfig());
  is.Update(MakeSample(100.0, 50.0));  // bound 105
  // Load far below bound (n* > n): -gamma branch.
  const double next = is.Update(MakeSample(50.0, 50.0));
  EXPECT_DOUBLE_EQ(next, 100.0);
}

TEST_F(IsTest, RespectsStaticBounds) {
  IsConfig config = DefaultConfig();
  config.initial_bound = 495.0;
  IncrementalStepsController is(config);
  is.Update(MakeSample(495.0, 10.0));
  // Keep "improving" upward: bound must clamp at max_bound.
  double bound = 0.0;
  for (int i = 1; i < 50; ++i) {
    bound = is.Update(MakeSample(495.0, 10.0 + i * 5.0));
  }
  EXPECT_LE(bound, config.max_bound);
  // And symmetric at the bottom.
  IsConfig low = DefaultConfig();
  low.initial_bound = 12.0;
  IncrementalStepsController is2(low);
  is2.Update(MakeSample(12.0, 100.0));
  double bound2 = 0.0;
  for (int i = 1; i < 50; ++i) {
    bound2 = is2.Update(MakeSample(12.0, 100.0 - i * 3.0));
  }
  EXPECT_GE(bound2, low.min_bound);
}

TEST_F(IsTest, SignumConventionMinusOneAtZero) {
  // After a drift-pull the bound did not move by the signum path, so
  // n*(t_i) == n*(t_{i-1}) can occur; the paper defines signum(0) = -1.
  IsConfig config = DefaultConfig();
  config.gamma = 5.0;
  IncrementalStepsController is(config);
  is.Update(MakeSample(100.0, 50.0));   // bound 105
  is.Update(MakeSample(200.0, 50.0));   // drift: bound 110
  is.Update(MakeSample(200.0, 50.0));   // drift: bound 115
  // Now bring load into band with rising P: direction = signum(115-110)=+1.
  const double next = is.Update(MakeSample(110.0, 60.0));
  EXPECT_DOUBLE_EQ(next, 115.0 + 1.0 * 10.0);
}

TEST_F(IsTest, ResetRestoresInitialState) {
  IncrementalStepsController is(DefaultConfig());
  is.Update(MakeSample(100.0, 50.0));
  is.Update(MakeSample(105.0, 60.0));
  is.Reset(33.0);
  EXPECT_DOUBLE_EQ(is.bound(), 33.0);
  // First update after reset is the exploratory step again.
  EXPECT_DOUBLE_EQ(is.Update(MakeSample(33.0, 10.0)), 38.0);
}

class PaTest : public ::testing::Test {
 protected:
  PaConfig DefaultConfig() {
    PaConfig config;
    config.forgetting = 0.95;
    config.initial_bound = 50.0;
    config.min_bound = 5.0;
    config.max_bound = 200.0;
    config.dither = 4.0;
    config.warmup_updates = 4;
    config.recovery_step = 10.0;
    return config;
  }

  /// Feeds the controller a deterministic concave response centred at n_opt.
  double Converge(ParabolaApproximationController* pa, double n_opt,
                  int iterations, double noise_seed = 0.0) {
    double bound = pa->bound();
    for (int i = 0; i < iterations; ++i) {
      const double load = bound;
      const double perf = 100.0 - 0.05 * (load - n_opt) * (load - n_opt) +
                          noise_seed * std::sin(i * 1.7);
      bound = pa->Update(MakeSample(load, perf, i * 1.0));
    }
    return bound;
  }
};

TEST_F(PaTest, WarmupDithersAroundInitialBound) {
  ParabolaApproximationController pa(DefaultConfig());
  const double b1 = pa.Update(MakeSample(50.0, 10.0));
  const double b2 = pa.Update(MakeSample(b1, 10.0));
  EXPECT_NEAR(std::fabs(b1 - 50.0), 4.0, 1e-9);
  EXPECT_NE(b1, b2);  // alternating dither sign
}

TEST_F(PaTest, FindsVertexOfCleanParabola) {
  ParabolaApproximationController pa(DefaultConfig());
  const double bound = Converge(&pa, 120.0, 60);
  EXPECT_NEAR(bound, 120.0, 8.0);  // within dither of the optimum
  double a0, a1, a2;
  pa.FittedCoefficients(&a0, &a1, &a2);
  EXPECT_LT(a2, 0.0);
  EXPECT_NEAR(-a1 / (2.0 * a2), 120.0, 5.0);
}

TEST_F(PaTest, TracksMovedOptimum) {
  ParabolaApproximationController pa(DefaultConfig());
  Converge(&pa, 120.0, 60);
  const double bound = Converge(&pa, 60.0, 80);
  EXPECT_NEAR(bound, 60.0, 10.0);
}

TEST_F(PaTest, DitherKeepsExcitation) {
  ParabolaApproximationController pa(DefaultConfig());
  Converge(&pa, 100.0, 50);
  const double b1 = Converge(&pa, 100.0, 1);
  const double b2 = Converge(&pa, 100.0, 1);
  // The commanded bound oscillates by ~2*dither even at convergence (the
  // paper: oscillations in fig. 14 are enforced by the algorithm).
  EXPECT_GT(std::fabs(b1 - b2), 4.0);
}

TEST_F(PaTest, UpwardParabolaTriggersRecovery) {
  PaConfig config = DefaultConfig();
  config.recovery = PaRecoveryPolicy::kHold;
  ParabolaApproximationController pa(config);
  // Convex response (no interior max): a2 estimates positive.
  double bound = pa.bound();
  int in_recovery = 0;
  for (int i = 0; i < 40; ++i) {
    const double load = bound;
    const double perf = 10.0 + 0.02 * load * load;
    bound = pa.Update(MakeSample(load, perf, i));
    if (pa.in_recovery()) ++in_recovery;
  }
  EXPECT_GT(in_recovery, 5);
}

TEST_F(PaTest, GradientRecoveryFollowsSlope) {
  PaConfig config = DefaultConfig();
  config.recovery = PaRecoveryPolicy::kGradient;
  config.reset_after_failures = 1000;  // isolate the gradient behaviour
  ParabolaApproximationController pa(config);
  // Rising convex curve: slope positive everywhere, so recovery pushes up.
  double bound = pa.bound();
  double prev_center = 0.0;
  double last_center = 0.0;
  for (int i = 0; i < 30; ++i) {
    const double load = bound;
    const double perf = 10.0 + 0.02 * load * load;
    bound = pa.Update(MakeSample(load, perf, i));
    prev_center = last_center;
    last_center = bound;
  }
  EXPECT_GT(bound, 50.0);  // drifted upward, toward better performance
  (void)prev_center;
}

TEST_F(PaTest, ContractRecoveryStepsDown) {
  PaConfig config = DefaultConfig();
  config.recovery = PaRecoveryPolicy::kContract;
  config.reset_after_failures = 1000;
  ParabolaApproximationController pa(config);
  double bound = pa.bound();
  for (int i = 0; i < 30; ++i) {
    const double load = bound;
    const double perf = 10.0 + 0.02 * load * load;  // convex: always recovery
    bound = pa.Update(MakeSample(load, perf, i));
  }
  EXPECT_LT(bound, 50.0);  // contracted downward from the initial bound
}

TEST_F(PaTest, RepeatedFailuresResetCovariance) {
  PaConfig config = DefaultConfig();
  config.recovery = PaRecoveryPolicy::kHold;
  config.reset_after_failures = 3;
  ParabolaApproximationController pa(config);
  double bound = pa.bound();
  for (int i = 0; i < 20; ++i) {
    const double load = bound;
    bound = pa.Update(MakeSample(load, 10.0 + 0.02 * load * load, i));
  }
  // consecutive counter must have been folded back below the threshold.
  EXPECT_LT(pa.consecutive_upward_fits(), 3);
}

TEST_F(PaTest, RecoversAfterAbruptShapeChange) {
  // Fig. 8 scenario: converge, then the surface shifts so the old fit is
  // deep in the thrashing region; PA must re-find the new optimum.
  PaConfig config = DefaultConfig();
  config.forgetting = 0.90;
  ParabolaApproximationController pa(config);
  Converge(&pa, 150.0, 80);
  const double bound = Converge(&pa, 40.0, 120);
  EXPECT_NEAR(bound, 40.0, 12.0);
}

TEST_F(PaTest, BoundsAreRespected) {
  ParabolaApproximationController pa(DefaultConfig());
  // Optimum far outside the admissible range: clamp at max_bound.
  const double bound = Converge(&pa, 1000.0, 60);
  EXPECT_LE(bound, 200.0);
  EXPECT_GE(bound, 5.0);
}

TEST_F(PaTest, ResetClearsEstimator) {
  ParabolaApproximationController pa(DefaultConfig());
  Converge(&pa, 120.0, 50);
  pa.Reset(30.0);
  EXPECT_DOUBLE_EQ(pa.bound(), 30.0);
  EXPECT_FALSE(pa.in_recovery());
  // Next updates are warmup dithers around the new bound.
  const double b = pa.Update(MakeSample(30.0, 5.0));
  EXPECT_NEAR(std::fabs(b - 30.0), 4.0, 1e-9);
}

TEST(TayRuleTest, ComputesBoundFromFormula) {
  TayRuleController tay(10000.0, [](double) { return 10.0; }, 1.5);
  // n* = 1.5 * D / k^2 = 1.5 * 10000 / 100 = 150.
  EXPECT_DOUBLE_EQ(tay.Update(MakeSample(50, 10)), 150.0);
}

TEST(TayRuleTest, FollowsDeclaredKSchedule) {
  double current_k = 10.0;
  TayRuleController tay(10000.0, [&current_k](double) { return current_k; });
  EXPECT_DOUBLE_EQ(tay.Update(MakeSample(1, 1, 0.0)), 150.0);
  current_k = 20.0;
  EXPECT_DOUBLE_EQ(tay.Update(MakeSample(1, 1, 1.0)), 37.5);
}

TEST(TayRuleTest, NeverBelowOne) {
  TayRuleController tay(100.0, [](double) { return 50.0; });
  EXPECT_DOUBLE_EQ(tay.Update(MakeSample(1, 1)), 1.0);
}

TEST(IyerRuleTest, IntegralActionMovesTowardTarget) {
  IyerRuleController::Config config;
  config.target_conflicts = 0.75;
  config.gain = 10.0;
  config.initial_bound = 100.0;
  IyerRuleController iyer(config);

  Sample calm = MakeSample(100, 50);
  calm.conflict_rate = 0.1;  // far below target: raise the bound
  EXPECT_DOUBLE_EQ(iyer.Update(calm), 106.5);

  Sample hot = MakeSample(100, 50);
  hot.conflict_rate = 1.75;  // above target: lower it
  EXPECT_DOUBLE_EQ(iyer.Update(hot), 96.5);
}

TEST(IyerRuleTest, ConvergesOnSyntheticConflictCurve) {
  // conflict_rate(n) = n / 100: target 0.75 should steer n* toward 75.
  IyerRuleController::Config config;
  config.gain = 20.0;
  config.initial_bound = 10.0;
  IyerRuleController iyer(config);
  double bound = config.initial_bound;
  for (int i = 0; i < 200; ++i) {
    Sample sample = MakeSample(bound, 50);
    sample.conflict_rate = bound / 100.0;
    bound = iyer.Update(sample);
  }
  EXPECT_NEAR(bound, 75.0, 2.0);
}

TEST(IyerRuleTest, RespectsBounds) {
  IyerRuleController::Config config;
  config.gain = 1000.0;
  config.min_bound = 5.0;
  config.max_bound = 300.0;
  IyerRuleController iyer(config);
  Sample calm = MakeSample(10, 10);
  calm.conflict_rate = 0.0;
  EXPECT_LE(iyer.Update(calm), 300.0);
  Sample hot = MakeSample(10, 10);
  hot.conflict_rate = 10.0;
  EXPECT_GE(iyer.Update(hot), 5.0);
}

TEST(IntervalAdvisorTest, RequiredDeparturesMatchesFormula) {
  // z(95%) ~ 1.96, cv=1, eps=0.1 -> (1.96/0.1)^2 ~ 384 departures:
  // "rather hundreds of departures than some tens".
  IntervalAdvisor advisor(1.0, 0.1, 0.95);
  EXPECT_NEAR(advisor.RequiredDepartures(), 384.1, 1.0);
}

TEST(IntervalAdvisorTest, IntervalScalesInverselyWithThroughput) {
  IntervalAdvisor advisor(1.0, 0.1, 0.95);
  const double at_100 = advisor.RecommendedInterval(100.0);
  const double at_200 = advisor.RecommendedInterval(200.0);
  EXPECT_NEAR(at_100 / at_200, 2.0, 1e-9);
  EXPECT_NEAR(at_100, 3.84, 0.05);
}

TEST(IntervalAdvisorTest, MoreVariableProcessNeedsLongerIntervals) {
  IntervalAdvisor smooth(0.5, 0.1, 0.95);
  IntervalAdvisor bursty(2.0, 0.1, 0.95);
  EXPECT_GT(bursty.RequiredDepartures(), smooth.RequiredDepartures() * 10.0);
}

TEST(IntervalAdvisorTest, TighterAccuracyNeedsMoreData) {
  IntervalAdvisor loose(1.0, 0.2, 0.95);
  IntervalAdvisor tight(1.0, 0.05, 0.95);
  EXPECT_NEAR(tight.RequiredDepartures() / loose.RequiredDepartures(), 16.0,
              0.1);
}

}  // namespace
}  // namespace alc::control
