// Edge cases and failure injection across the stack: degenerate system
// sizes, extreme workloads, controller corner conditions, and the PA
// excitation guard.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "control/gate.h"
#include "control/monitor.h"
#include "control/parabola.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "db/system.h"
#include "sim/simulator.h"

namespace alc {
namespace {

db::SystemConfig TinyConfig(uint64_t seed = 1) {
  db::SystemConfig config;
  config.physical.num_terminals = 4;
  config.physical.think_time_mean = 0.05;
  config.physical.num_cpus = 1;
  config.physical.cpu_init_mean = 0.0005;
  config.physical.cpu_access_mean = 0.0005;
  config.physical.cpu_commit_mean = 0.0005;
  config.physical.cpu_write_commit_mean = 0.001;
  config.physical.io_time = 0.002;
  config.physical.restart_delay_mean = 0.005;
  config.logical.db_size = 10;
  config.logical.accesses_per_txn = 1;
  config.seed = seed;
  return config;
}

TEST(RobustnessTest, SingleTerminalSingleAccessRuns) {
  sim::Simulator sim;
  db::SystemConfig config = TinyConfig();
  config.physical.num_terminals = 1;
  db::TransactionSystem system(&sim, config);
  system.Start();
  sim.RunUntil(10.0);
  EXPECT_GT(system.metrics().counters.commits, 100u);
  // A single transaction can never conflict with itself.
  EXPECT_EQ(system.metrics().counters.aborts_certification, 0u);
}

TEST(RobustnessTest, AccessSetAsLargeAsDatabase) {
  sim::Simulator sim;
  db::SystemConfig config = TinyConfig();
  config.logical.accesses_per_txn = 10;  // == db_size: full-scan txns
  config.logical.write_fraction = 0.5;
  config.logical.query_fraction = 0.0;
  db::TransactionSystem system(&sim, config);
  system.Start();
  sim.RunUntil(10.0);
  EXPECT_GT(system.metrics().counters.commits, 50u);
}

TEST(RobustnessTest, KScheduleClampedToDatabaseSize) {
  sim::Simulator sim;
  db::SystemConfig config = TinyConfig();
  db::TransactionSystem system(&sim, config);
  db::WorkloadDynamics dynamics =
      db::WorkloadDynamics::FromConfig(config.logical);
  dynamics.k = db::Schedule::Steps(1.0, {{2.0, 500.0}});  // >> db_size 10
  system.SetWorkloadDynamics(dynamics);
  system.Start();
  sim.RunUntil(6.0);  // would CHECK-fail inside PlanAccesses if unclamped
  EXPECT_GT(system.metrics().counters.commits, 10u);
}

TEST(RobustnessTest, TwoPhaseLockingQueryOnlyNeverDeadlocks) {
  sim::Simulator sim;
  db::SystemConfig config = TinyConfig();
  config.cc = db::CcScheme::kTwoPhaseLocking;
  config.physical.num_terminals = 20;
  config.logical.db_size = 15;
  config.logical.accesses_per_txn = 5;
  config.logical.query_fraction = 1.0;  // shared locks only
  db::TransactionSystem system(&sim, config);
  system.Start();
  sim.RunUntil(15.0);
  EXPECT_GT(system.metrics().counters.commits, 500u);
  EXPECT_EQ(system.metrics().counters.aborts_deadlock, 0u);
  EXPECT_EQ(system.metrics().counters.lock_waits, 0u);
}

TEST(RobustnessTest, HotspotWorkloadEndToEnd) {
  sim::Simulator sim;
  db::SystemConfig config = TinyConfig();
  config.physical.num_terminals = 30;
  config.logical.db_size = 1000;
  config.logical.accesses_per_txn = 6;
  config.logical.write_fraction = 0.5;
  config.logical.query_fraction = 0.0;
  config.logical.hotspot_access_prob = 0.8;
  config.logical.hotspot_size_fraction = 0.02;  // 20 hot granules
  db::TransactionSystem system(&sim, config);
  system.Start();
  sim.RunUntil(15.0);
  const db::Counters& with_hotspot = system.metrics().counters;
  EXPECT_GT(with_hotspot.commits, 100u);

  // The same system without the hotspot conflicts far less.
  sim::Simulator sim2;
  db::SystemConfig no_hot = config;
  no_hot.logical.hotspot_access_prob = 0.0;
  no_hot.logical.hotspot_size_fraction = 0.0;
  db::TransactionSystem system2(&sim2, no_hot);
  system2.Start();
  sim2.RunUntil(15.0);
  EXPECT_GT(with_hotspot.aborts_certification * 1.0,
            2.0 * system2.metrics().counters.aborts_certification + 10.0);
}

TEST(RobustnessTest, GateWithLimitOneSerializesEverything) {
  sim::Simulator sim;
  db::SystemConfig config = TinyConfig();
  config.physical.num_terminals = 10;
  db::TransactionSystem system(&sim, config);
  control::AdmissionGate gate(&system, 1.0);
  system.Start();
  int max_active = 0;
  for (double t = 0.1; t < 8.0; t += 0.1) {
    sim.ScheduleAt(t, [&] { max_active = std::max(max_active, system.active()); });
  }
  sim.RunUntil(8.0);
  EXPECT_EQ(max_active, 1);
  EXPECT_GT(system.metrics().counters.commits, 50u);
  // Serial execution: certification can never fail.
  EXPECT_EQ(system.metrics().counters.aborts_certification, 0u);
}

TEST(RobustnessTest, MonitorHandlesEmptyIntervals) {
  sim::Simulator sim;
  db::SystemConfig config = TinyConfig();
  config.physical.think_time_mean = 50.0;  // nearly no work
  db::TransactionSystem system(&sim, config);
  control::Monitor monitor(&sim, &system, 0.5);
  int zero_commit_samples = 0;
  monitor.SetCallback([&](const control::Sample& sample) {
    if (sample.commits == 0) {
      ++zero_commit_samples;
      EXPECT_EQ(sample.throughput, 0.0);
      EXPECT_EQ(sample.mean_response, 0.0);
      EXPECT_GE(sample.conflict_rate, 0.0);
    }
  });
  system.Start();
  monitor.Start();
  sim.RunUntil(5.0);
  EXPECT_GT(zero_commit_samples, 0);
}

TEST(RobustnessTest, GateFcfsAdmissionOrder) {
  sim::Simulator sim;
  db::SystemConfig config = TinyConfig();
  config.physical.num_terminals = 12;
  db::TransactionSystem system(&sim, config);
  control::AdmissionGate gate(&system, 2.0);
  system.Start();
  sim.RunUntil(5.0);
  // Sample admissions over a window: admit order must follow submit order
  // (FCFS) — verify via monotone first_submit_time of admissions seen in
  // admit_time order for currently active txns.
  std::vector<db::Transaction*> active;
  system.CollectActive(&active);
  std::sort(active.begin(), active.end(),
            [](const db::Transaction* a, const db::Transaction* b) {
              return a->admit_time < b->admit_time;
            });
  for (size_t i = 1; i < active.size(); ++i) {
    EXPECT_LE(active[i - 1]->first_submit_time,
              active[i]->first_submit_time);
  }
}

TEST(RobustnessTest, DisplacementDuringHeavyRestartChurn) {
  // Displacing transactions that are mostly in restart-wait or doomed must
  // keep all invariants (this is the nastiest interleaving in the system).
  sim::Simulator sim;
  db::SystemConfig config = TinyConfig(99);
  config.physical.num_terminals = 30;
  config.logical.db_size = 12;
  config.logical.accesses_per_txn = 4;
  config.logical.write_fraction = 0.9;
  config.logical.query_fraction = 0.0;
  config.physical.restart_delay_mean = 0.05;
  db::TransactionSystem system(&sim, config);
  control::AdmissionGate gate(&system, 25.0);
  gate.EnableDisplacement(true);
  system.Start();
  for (double t = 1.0; t < 12.0; t += 1.0) {
    sim.ScheduleAt(t, [&gate, t] {
      gate.SetLimit(static_cast<int>(t) % 2 == 1 ? 3.0 : 25.0);
    });
  }
  int violations = 0;
  for (double t = 0.5; t < 12.0; t += 0.25) {
    sim.ScheduleAt(t, [&] {
      const int total =
          system.CountThinking() + system.active() + gate.queue_length();
      if (total != config.physical.num_terminals) ++violations;
    });
  }
  sim.RunUntil(12.0);
  EXPECT_EQ(violations, 0);
  EXPECT_GT(gate.total_displaced(), 0u);
  EXPECT_GT(system.metrics().counters.commits, 50u);
}

TEST(RobustnessTest, PaExcitationBoostEngagesWhenLoadFrozen) {
  control::PaConfig config;
  config.initial_bound = 50.0;
  config.min_bound = 5.0;
  config.max_bound = 500.0;
  config.dither = 10.0;
  config.warmup_updates = 2;
  control::ParabolaApproximationController pa(config);
  control::Sample sample;
  sample.interval = 1.0;
  // The measured load never follows the commanded bound: frozen at 8.
  for (int i = 0; i < 20; ++i) {
    sample.time = i;
    sample.mean_active = 8.0 + 0.1 * (i % 2);
    sample.throughput = 20.0;
    pa.Update(sample);
  }
  EXPECT_GT(pa.excitation_boost(), 2.0);
}

TEST(RobustnessTest, PaExcitationBoostStaysQuietWhenLoadFollows) {
  control::PaConfig config;
  config.initial_bound = 100.0;
  config.min_bound = 5.0;
  config.max_bound = 500.0;
  config.dither = 10.0;
  config.warmup_updates = 2;
  control::ParabolaApproximationController pa(config);
  control::Sample sample;
  sample.interval = 1.0;
  double bound = config.initial_bound;
  for (int i = 0; i < 30; ++i) {
    sample.time = i;
    sample.mean_active = bound;  // load follows the bound exactly
    sample.throughput = 200.0 - 0.01 * (bound - 150.0) * (bound - 150.0);
    bound = pa.Update(sample);
  }
  EXPECT_LE(pa.excitation_boost(), 1.5);
}

TEST(RobustnessTest, PaBoostedDitherRespectsBounds) {
  control::PaConfig config;
  config.initial_bound = 10.0;
  config.min_bound = 5.0;
  config.max_bound = 60.0;
  config.dither = 20.0;
  config.max_excitation_boost = 8.0;
  config.warmup_updates = 1;
  control::ParabolaApproximationController pa(config);
  control::Sample sample;
  sample.interval = 1.0;
  for (int i = 0; i < 40; ++i) {
    sample.time = i;
    sample.mean_active = 7.0;  // frozen: boost maxes out
    sample.throughput = 10.0;
    const double bound = pa.Update(sample);
    EXPECT_GE(bound, config.min_bound);
    EXPECT_LE(bound, config.max_bound);
  }
}

TEST(RobustnessTest, PaBoostStretchesDitherPeriod) {
  control::PaConfig config;
  config.initial_bound = 50.0;
  config.min_bound = 5.0;
  config.max_bound = 500.0;
  config.dither = 10.0;
  config.warmup_updates = 2;
  control::ParabolaApproximationController pa(config);
  control::Sample sample;
  sample.interval = 1.0;
  // Freeze the load so the boost engages, then count sign-hold lengths.
  std::vector<double> bounds;
  for (int i = 0; i < 40; ++i) {
    sample.time = i;
    sample.mean_active = 8.0;
    sample.throughput = 20.0;
    bounds.push_back(pa.Update(sample));
  }
  // In the boosted regime the bound must repeat the same value for more
  // than one consecutive tick somewhere (held dither phase).
  bool held = false;
  for (size_t i = 20; i + 1 < bounds.size(); ++i) {
    if (bounds[i] == bounds[i + 1]) held = true;
  }
  EXPECT_TRUE(held);
}

TEST(RobustnessTest, ExperimentWithTayRuleTracksDeclaredK) {
  core::ScenarioConfig scenario;
  scenario.system = TinyConfig(7);
  scenario.system.physical.num_terminals = 40;
  scenario.system.logical.db_size = 400;
  scenario.system.logical.accesses_per_txn = 8;
  scenario.dynamics = db::WorkloadDynamics::FromConfig(scenario.system.logical);
  scenario.dynamics.k = db::Schedule::Steps(8.0, {{10.0, 4.0}});
  scenario.active_terminals = db::Schedule::Constant(40);
  scenario.duration = 20.0;
  scenario.warmup = 2.0;
  scenario.control.name = "tay-rule";
  const core::ExperimentResult result = core::Experiment(scenario).Run();
  // Bound before the k change: 1.5*400/64 = 9.375; after: 1.5*400/16 = 37.5.
  bool saw_low = false, saw_high = false;
  for (const core::TrajectoryPoint& point : result.trajectory) {
    if (point.time < 10.0 && std::fabs(point.bound - 9.375) < 1e-9) {
      saw_low = true;
    }
    if (point.time > 10.5 && std::fabs(point.bound - 37.5) < 1e-9) {
      saw_high = true;
    }
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(RobustnessTest, ZeroWarmupExperiment) {
  core::ScenarioConfig scenario;
  scenario.system = TinyConfig(3);
  scenario.dynamics = db::WorkloadDynamics::FromConfig(scenario.system.logical);
  scenario.active_terminals = db::Schedule::Constant(4);
  scenario.duration = 5.0;
  scenario.warmup = 0.0;
  scenario.control.name = "fixed";
  scenario.control.fixed_limit = 5.0;
  const core::ExperimentResult result = core::Experiment(scenario).Run();
  EXPECT_GT(result.commits, 0u);
}

}  // namespace
}  // namespace alc
