// Controller and routing-policy registries: built-in coverage, the
// deprecated enums' alias names, unknown-name and duplicate-registration
// errors, param serialization round trips, and external registration
// running through the standard ExperimentSpec path with no core edits.

#include <algorithm>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "cluster/registry.h"
#include "control/fixed.h"
#include "control/registry.h"
#include "core/cluster_experiment.h"
#include "core/cluster_scenario.h"
#include "core/scenario.h"
#include "core/spec.h"

namespace alc {
namespace {

// ------------------------------------------------------------ controllers --

TEST(ControllerRegistryTest, BuiltinsAreRegistered) {
  auto& registry = control::ControllerRegistry::Global();
  for (const char* name :
       {"none", "fixed", "tay-rule", "iyer-rule", "incremental-steps",
        "parabola-approximation", "golden-section"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
}

TEST(ControllerRegistryTest, BuiltInNamesReachTheExpectedFactories) {
  // Selecting each built-in by name must reach a controller that reports
  // the same name back.
  for (const char* name :
       {"none", "fixed", "tay-rule", "iyer-rule", "incremental-steps",
        "parabola-approximation", "golden-section"}) {
    EXPECT_TRUE(control::ControllerRegistry::Global().Contains(name)) << name;
    core::ScenarioConfig scenario = core::DefaultScenario();
    scenario.control.name = name;
    std::unique_ptr<control::LoadController> controller =
        core::MakeController(scenario);
    ASSERT_NE(controller, nullptr);
    EXPECT_EQ(controller->name(), std::string_view(name));
  }
}

TEST(ControllerRegistryTest, UnknownNameReportsRegisteredNames) {
  util::ParamMap params;
  control::ControllerContext context;
  context.params = &params;
  std::string error;
  EXPECT_EQ(control::ControllerRegistry::Global().Make("warp-drive", context,
                                                       &error),
            nullptr);
  EXPECT_NE(error.find("warp-drive"), std::string::npos) << error;
  EXPECT_NE(error.find("parabola-approximation"), std::string::npos) << error;
}

TEST(ControllerRegistryTest, DuplicateRegistrationIsRejected) {
  auto& registry = control::ControllerRegistry::Global();
  EXPECT_FALSE(registry.Register("fixed", [](const control::ControllerContext&)
                                     -> std::unique_ptr<control::LoadController> {
    return std::make_unique<control::NoControlController>();
  }));
  // The original factory survives: "fixed" still builds a fixed limiter.
  util::ParamMap params;
  params.SetDouble("fixed.limit", 33.0);
  control::ControllerContext context;
  context.params = &params;
  std::unique_ptr<control::LoadController> controller =
      registry.Make("fixed", context);
  ASSERT_NE(controller, nullptr);
  EXPECT_EQ(controller->bound(), 33.0);
}

TEST(ControllerRegistryTest, ParamsRoundTripTypedConfigs) {
  control::PaConfig pa;
  pa.forgetting = 0.91;
  pa.dither = 4.5;
  pa.recovery = control::PaRecoveryPolicy::kContract;
  pa.index = control::PerformanceIndex::kInverseResponseTime;
  util::ParamMap params;
  control::AppendPaParams(pa, &params);
  const control::PaConfig back = control::PaFromParams(params);
  EXPECT_EQ(back.forgetting, pa.forgetting);
  EXPECT_EQ(back.dither, pa.dither);
  EXPECT_EQ(back.recovery, pa.recovery);
  EXPECT_EQ(back.index, pa.index);

  control::IsConfig is;
  is.beta = 1.5;
  is.max_bound = 444.0;
  util::ParamMap is_params;
  control::AppendIsParams(is, &is_params);
  const control::IsConfig is_back = control::IsFromParams(is_params);
  EXPECT_EQ(is_back.beta, is.beta);
  EXPECT_EQ(is_back.max_bound, is.max_bound);
}

/// The example-controller scenario: a policy registered outside src/ (here,
/// in a test binary) driven through the standard spec path.
class HalvingController : public control::LoadController {
 public:
  explicit HalvingController(double initial) : bound_(initial) {}
  double Update(const control::Sample&) override {
    bound_ = std::max(5.0, bound_ * 0.5);
    return bound_;
  }
  void Reset(double initial_bound) override { bound_ = initial_bound; }
  double bound() const override { return bound_; }
  std::string_view name() const override { return "test-halving"; }

 private:
  double bound_;
};

TEST(ControllerRegistryTest, ExternalControllerRunsThroughSpecPath) {
  control::ControllerRegistry::Global().Register(
      "test-halving", [](const control::ControllerContext& context) {
        return std::make_unique<HalvingController>(
            context.params->GetDouble("halving.initial", 100.0));
      });

  core::ScenarioConfig scenario = core::DefaultScenario();
  scenario.system.seed = 3;
  scenario.duration = 10.0;
  scenario.warmup = 2.0;
  core::ExperimentSpec spec = core::SpecFromScenario(scenario);
  spec.nodes[0].control.controller = "test-halving";
  spec.nodes[0].control.params.SetDouble("halving.initial", 64.0);

  // Through the text form too: registration is all it takes for the name
  // to work in a spec file.
  core::ExperimentSpec reparsed;
  std::string error;
  ASSERT_TRUE(core::ParseSpec(core::PrintSpec(spec), &reparsed, &error))
      << error;
  const core::SpecRunResult result = core::RunSpec(reparsed);
  ASSERT_FALSE(result.cluster);
  ASSERT_FALSE(result.single.trajectory.empty());
  // The halving policy collapses the bound toward its floor.
  EXPECT_EQ(result.single.trajectory.back().bound, 5.0);
}

// --------------------------------------------------------- routing policies --

TEST(RoutingRegistryTest, BuiltinsAreRegisteredUnderTheirNames) {
  auto& registry = cluster::RoutingPolicyRegistry::Global();
  for (const char* name :
       {"round-robin", "random", "join-shortest-queue", "threshold",
        "power-of-d", "locality", "locality-threshold"}) {
    ASSERT_TRUE(registry.Contains(name)) << name;
    util::ParamMap params;
    cluster::RoutingPolicyContext context;
    context.params = &params;
    context.seed = 1;
    std::unique_ptr<cluster::RoutingPolicy> policy =
        registry.Make(name, context);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), std::string_view(name));
  }
}

TEST(RoutingRegistryTest, UnknownNameAndDuplicateRegistration) {
  auto& registry = cluster::RoutingPolicyRegistry::Global();
  util::ParamMap params;
  cluster::RoutingPolicyContext context;
  context.params = &params;
  std::string error;
  EXPECT_EQ(registry.Make("teleport", context, &error), nullptr);
  EXPECT_NE(error.find("teleport"), std::string::npos) << error;
  EXPECT_NE(error.find("join-shortest-queue"), std::string::npos) << error;

  EXPECT_FALSE(registry.Register(
      "random", [](const cluster::RoutingPolicyContext&)
                    -> std::unique_ptr<cluster::RoutingPolicy> {
        return std::make_unique<cluster::RoundRobinPolicy>();
      }));
}

TEST(RoutingRegistryTest, ThresholdParamsReachThePolicy) {
  util::ParamMap params;
  params.SetDouble("threshold.initial_threshold", 11.0);
  cluster::RoutingPolicyContext context;
  context.params = &params;
  std::unique_ptr<cluster::RoutingPolicy> policy =
      cluster::RoutingPolicyRegistry::Global().Make("threshold", context);
  ASSERT_NE(policy, nullptr);
  auto* threshold = static_cast<cluster::ThresholdPolicy*>(policy.get());
  EXPECT_EQ(threshold->threshold(), 11.0);
}

/// A placement-blind external policy: everything goes to the first live
/// node.
class PinToZeroPolicy : public cluster::RoutingPolicy {
 public:
  int Route(const cluster::MembershipView& cluster,
            const cluster::RouteContext&) override {
    return cluster.live->front();
  }
  std::string_view name() const override { return "pin-to-zero"; }
};

TEST(RoutingRegistryTest, ExternalPolicyRunsThroughSpecPath) {
  cluster::RoutingPolicyRegistry::Global().Register(
      "pin-to-zero", [](const cluster::RoutingPolicyContext&) {
        return std::make_unique<PinToZeroPolicy>();
      });

  core::ExperimentSpec spec;
  spec.cluster = true;
  spec.seed = 11;
  spec.duration = 8.0;
  spec.warmup = 2.0;
  spec.routing = "pin-to-zero";
  spec.arrival_rate = db::Schedule::Constant(60.0);
  spec.nodes.resize(2);
  for (size_t i = 0; i < spec.nodes.size(); ++i) {
    spec.nodes[i].system.seed = 50 + i;
    spec.nodes[i].system.physical.num_cpus = 4;
    spec.nodes[i].control.controller = "none";
    spec.nodes[i].control.measurement_interval = 0.5;
  }

  const core::SpecRunResult result = core::RunSpec(spec);
  ASSERT_TRUE(result.cluster);
  EXPECT_GT(result.cluster_result.nodes[0].routed, 0u);
  EXPECT_EQ(result.cluster_result.nodes[1].routed, 0u);
}

}  // namespace
}  // namespace alc
