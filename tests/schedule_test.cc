#include <cmath>

#include <gtest/gtest.h>

#include "db/schedule.h"
#include "db/workload.h"

namespace alc::db {
namespace {

TEST(ScheduleTest, ConstantValue) {
  Schedule s = Schedule::Constant(5.5);
  EXPECT_DOUBLE_EQ(s.Value(0.0), 5.5);
  EXPECT_DOUBLE_EQ(s.Value(1e9), 5.5);
  EXPECT_TRUE(s.is_constant());
  EXPECT_TRUE(s.ChangePoints().empty());
}

TEST(ScheduleTest, StepsJumpAtChangeTimes) {
  Schedule s = Schedule::Steps(10.0, {{100.0, 20.0}, {200.0, 5.0}});
  EXPECT_DOUBLE_EQ(s.Value(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.Value(99.999), 10.0);
  EXPECT_DOUBLE_EQ(s.Value(100.0), 20.0);
  EXPECT_DOUBLE_EQ(s.Value(150.0), 20.0);
  EXPECT_DOUBLE_EQ(s.Value(200.0), 5.0);
  EXPECT_DOUBLE_EQ(s.Value(1e6), 5.0);
  EXPECT_FALSE(s.is_constant());
}

TEST(ScheduleTest, StepsChangePoints) {
  Schedule s = Schedule::Steps(1.0, {{10.0, 2.0}, {20.0, 3.0}});
  const auto points = s.ChangePoints();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0], 10.0);
  EXPECT_DOUBLE_EQ(points[1], 20.0);
}

TEST(ScheduleTest, SinusoidShape) {
  Schedule s = Schedule::Sinusoid(10.0, 4.0, 100.0);
  EXPECT_NEAR(s.Value(0.0), 10.0, 1e-12);
  EXPECT_NEAR(s.Value(25.0), 14.0, 1e-9);   // quarter period: +amplitude
  EXPECT_NEAR(s.Value(50.0), 10.0, 1e-9);
  EXPECT_NEAR(s.Value(75.0), 6.0, 1e-9);
  EXPECT_NEAR(s.Value(100.0), 10.0, 1e-9);  // full period
}

TEST(ScheduleTest, SinusoidPhaseShift) {
  Schedule s = Schedule::Sinusoid(0.0, 1.0, 1.0, M_PI / 2.0);
  EXPECT_NEAR(s.Value(0.0), 1.0, 1e-12);
}

TEST(ScheduleTest, PiecewiseLinearInterpolatesAndExtrapolatesFlat) {
  Schedule s = Schedule::PiecewiseLinear({{10.0, 0.0}, {20.0, 100.0}});
  EXPECT_DOUBLE_EQ(s.Value(0.0), 0.0);     // before first point
  EXPECT_DOUBLE_EQ(s.Value(15.0), 50.0);   // midpoint
  EXPECT_DOUBLE_EQ(s.Value(20.0), 100.0);
  EXPECT_DOUBLE_EQ(s.Value(99.0), 100.0);  // after last point
}

TEST(ScheduleTest, RangeConstant) {
  const auto [lo, hi] = Schedule::Constant(3.0).Range(100.0);
  EXPECT_DOUBLE_EQ(lo, 3.0);
  EXPECT_DOUBLE_EQ(hi, 3.0);
}

TEST(ScheduleTest, RangeStepsWithinHorizon) {
  Schedule s = Schedule::Steps(10.0, {{50.0, 30.0}, {500.0, 1.0}});
  const auto [lo, hi] = s.Range(100.0);  // the 500s step is out of horizon
  EXPECT_DOUBLE_EQ(lo, 10.0);
  EXPECT_DOUBLE_EQ(hi, 30.0);
}

TEST(ScheduleTest, RangeSinusoidFullPeriod) {
  Schedule s = Schedule::Sinusoid(10.0, 4.0, 50.0);
  const auto [lo, hi] = s.Range(200.0);
  EXPECT_DOUBLE_EQ(lo, 6.0);
  EXPECT_DOUBLE_EQ(hi, 14.0);
}

TEST(WorkloadDynamicsTest, FromConfigIsConstant) {
  LogicalConfig logical;
  logical.accesses_per_txn = 12;
  logical.query_fraction = 0.4;
  logical.write_fraction = 0.1;
  WorkloadDynamics dynamics = WorkloadDynamics::FromConfig(logical);
  EXPECT_EQ(dynamics.KAt(0.0, 1000), 12);
  EXPECT_EQ(dynamics.KAt(1e6, 1000), 12);
  EXPECT_DOUBLE_EQ(dynamics.QueryFractionAt(5.0), 0.4);
  EXPECT_DOUBLE_EQ(dynamics.WriteFractionAt(5.0), 0.1);
  EXPECT_TRUE(dynamics.ChangePoints().empty());
}

TEST(WorkloadDynamicsTest, KIsRoundedAndClamped) {
  WorkloadDynamics dynamics;
  dynamics.k = Schedule::Constant(7.6);
  EXPECT_EQ(dynamics.KAt(0.0, 1000), 8);
  dynamics.k = Schedule::Constant(0.2);
  EXPECT_EQ(dynamics.KAt(0.0, 1000), 1);  // clamped to >= 1
  dynamics.k = Schedule::Constant(5000.0);
  EXPECT_EQ(dynamics.KAt(0.0, 1000), 1000);  // clamped to db size
}

TEST(WorkloadDynamicsTest, FractionsClampedToUnitInterval) {
  WorkloadDynamics dynamics;
  dynamics.query_fraction = Schedule::Constant(1.7);
  dynamics.write_fraction = Schedule::Constant(-0.3);
  EXPECT_DOUBLE_EQ(dynamics.QueryFractionAt(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dynamics.WriteFractionAt(0.0), 0.0);
}

TEST(WorkloadDynamicsTest, ChangePointsMergedAndSorted) {
  WorkloadDynamics dynamics;
  dynamics.k = Schedule::Steps(16.0, {{300.0, 8.0}});
  dynamics.query_fraction = Schedule::Steps(0.3, {{100.0, 0.8}});
  dynamics.write_fraction = Schedule::Steps(0.25, {{300.0, 0.05}});
  const auto points = dynamics.ChangePoints();
  ASSERT_EQ(points.size(), 2u);  // 300 deduplicated
  EXPECT_DOUBLE_EQ(points[0], 100.0);
  EXPECT_DOUBLE_EQ(points[1], 300.0);
}

}  // namespace
}  // namespace alc::db
