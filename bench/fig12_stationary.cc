// E7 — Figure 12: "System throughput with and without control in the
// stationary case". The uncontrolled curve is the fixed-limit sweep over the
// 100..800 load range; the controlled system (PA; the paper notes IS was
// indistinguishable here) holds throughput at the peak regardless of the
// offered population.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "util/strformat.h"
#include "util/table.h"

int main() {
  using namespace alc;
  bench::PrintHeader(
      "Figure 12: throughput with and without control (stationary)",
      "both controllers keep the load at the optimum and prevent thrashing");

  core::ScenarioConfig base = bench::PaperScenario();

  // Without control: the classic sweep (the paper's falling curve).
  util::Table sweep({"load n", "T (no control)"});
  std::vector<std::pair<double, double>> curve;
  for (double n : {100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0}) {
    const double throughput =
        core::StationaryThroughput(base, n, 0.0, 120.0, 30.0, 11);
    curve.emplace_back(n, throughput);
    sweep.AddRow(
        {util::StrFormat("%.0f", n), util::StrFormat("%.1f", throughput)});
  }
  sweep.Print(std::cout);

  double peak = 0.0;
  for (const auto& [n, t] : curve) peak = std::max(peak, t);

  // With control: vary the *offered* population; the controller must pin
  // the operating point near the optimum every time.
  std::printf("\nWith adaptive control (offered population varies):\n");
  util::Table controlled({"terminals N", "controller", "T (controlled)",
                          "mean bound n*", "T/T_peak"});
  for (double population : {300.0, 550.0, 850.0}) {
    for (const char* controller :
         {"parabola-approximation", "incremental-steps"}) {
      core::ScenarioConfig scenario = bench::PaperScenario();
      scenario.active_terminals = db::Schedule::Constant(population);
      scenario.control.name = controller;
      const core::ExperimentResult result = core::Experiment(scenario).Run();
      double bound_sum = 0.0;
      int bound_n = 0;
      for (const core::TrajectoryPoint& point : result.trajectory) {
        if (point.time >= scenario.warmup) {
          bound_sum += point.bound;
          ++bound_n;
        }
      }
      controlled.AddRow(
          {util::StrFormat("%.0f", population),
           std::string(controller),
           util::StrFormat("%.1f", result.mean_throughput),
           util::StrFormat("%.0f", bound_sum / bound_n),
           util::StrFormat("%.2f", result.mean_throughput / peak)});
    }
  }
  controlled.Print(std::cout);
  std::printf(
      "\nshape check: uncontrolled T falls past the peak (%.1f at the peak "
      "vs %.1f at n=800);\ncontrolled T stays near the peak at every offered "
      "population.\n",
      peak, curve.back().second);
  return 0;
}
