// Cluster-level reproduction: routing policies over per-node adaptive
// admission gates. Sweeps 4 routing policies x 4 admission controllers on a
// 4-node cluster under three offered-load scenarios:
//
//   stationary    constant rate at ~2/3 of cluster capacity
//   flash-crowd   rate spikes far past capacity for a window; an
//                 uncontrolled open system is pushed into thrashing it
//                 cannot leave (the paper's section 1 argument, at fleet
//                 scale)
//   degraded      node 0 loses 70% of its CPU speed mid-run (load-aware
//                 routing must shift work away; blind routing keeps
//                 feeding the slow node)
//
// Each scenario is one SweepRunner grid (routing x admission as override
// axes over a single spec), run on all cores; per-point results are
// bit-identical to sequential runs. The flash-crowd JSQ cell is also
// checked in as specs/cluster_routing_flash.spec and regression-tested to
// match this bench bit-exactly (tests/sweep_test.cc).
//
// Claim under test: load-aware routing (JSQ / self-learning threshold)
// composed with per-node adaptive admission (Parabola) strictly beats blind
// routing with no admission control on the flash-crowd scenario.
//
//   $ ./build/bench/cluster_routing

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/cluster_experiment.h"
#include "core/cluster_scenario.h"
#include "core/spec.h"
#include "core/sweep.h"
#include "util/strformat.h"
#include "util/table.h"

namespace {

using namespace alc;

constexpr int kNumNodes = 4;

/// Downscaled node (4 CPUs, 600-granule DB) so the 48-run sweep stays
/// affordable; the thrashing shape matches the paper-scale system.
core::ClusterNodeScenario BenchNode(uint64_t seed) {
  core::ClusterNodeScenario node;
  node.system.physical.num_cpus = 4;
  node.system.physical.cpu_init_mean = 0.001;
  node.system.physical.cpu_access_mean = 0.001;
  node.system.physical.cpu_commit_mean = 0.001;
  node.system.physical.cpu_write_commit_mean = 0.004;
  node.system.physical.io_time = 0.008;
  node.system.physical.restart_delay_mean = 0.02;
  node.system.logical.db_size = 600;
  node.system.logical.accesses_per_txn = 8;
  node.system.logical.query_fraction = 0.3;
  node.system.logical.write_fraction = 0.4;
  node.system.seed = seed;
  node.dynamics = db::WorkloadDynamics::FromConfig(node.system.logical);
  node.control.measurement_interval = 0.5;
  node.control.initial_limit = 20.0;
  node.control.is.initial_bound = 20.0;
  node.control.is.min_bound = 2.0;
  node.control.is.max_bound = 200.0;
  node.control.pa.initial_bound = 20.0;
  node.control.pa.min_bound = 2.0;
  node.control.pa.max_bound = 200.0;
  node.control.pa.dither = 5.0;
  node.control.fixed_limit = 25.0;
  return node;
}

core::ClusterScenarioConfig BaseCluster(uint64_t seed) {
  core::ClusterScenarioConfig scenario;
  for (int i = 0; i < kNumNodes; ++i) {
    scenario.nodes.push_back(BenchNode(core::DecorrelatedNodeSeed(seed, i)));
  }
  scenario.seed = seed;
  scenario.duration = 160.0;
  scenario.warmup = 20.0;
  return scenario;
}

const std::vector<std::string> kRoutings = {
    "round-robin", "random", "join-shortest-queue", "threshold"};
const std::vector<std::string> kAdmissions = {
    "none", "fixed", "incremental-steps", "parabola-approximation"};

void RunScenario(const char* title, const core::ClusterScenarioConfig& base,
                 core::ClusterResult* jsq_parabola,
                 core::ClusterResult* threshold_parabola,
                 core::ClusterResult* random_none) {
  core::SweepRunner runner(core::SpecFromCluster(base),
                           {{"routing", kRoutings},
                            {"node.control.controller", kAdmissions}});
  const std::vector<core::SweepPointResult> results =
      runner.Run(bench::SweepThreads(runner.num_points()));

  std::printf("\n--- %s ---\n", title);
  util::Table table({"routing + admission", "throughput", "p-mean response",
                     "abort ratio", "commits"});
  for (const core::SweepPointResult& point : results) {
    const std::string& routing = point.assignment[0].second;
    const std::string& admission = point.assignment[1].second;
    const core::ClusterResult& result = point.result.cluster_result;
    table.AddRow({routing + " + " + admission,
                  util::StrFormat("%.1f/s", result.total_throughput),
                  util::StrFormat("%.3fs", result.mean_response),
                  util::StrFormat("%.3f", result.abort_ratio),
                  util::StrFormat("%llu", static_cast<unsigned long long>(
                                              result.commits))});
    if (routing == "join-shortest-queue" &&
        admission == "parabola-approximation" && jsq_parabola) {
      *jsq_parabola = result;
    }
    if (routing == "threshold" && admission == "parabola-approximation" &&
        threshold_parabola) {
      *threshold_parabola = result;
    }
    if (routing == "random" && admission == "none" && random_none) {
      *random_none = result;
    }
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Cluster routing x per-node adaptive admission",
      "load-aware routing over adaptive gates absorbs overload that "
      "thrashes blind routing without admission control");

  const uint64_t seed = 42;

  // Per-node capacity is ~150 commits/s at the optimum (4 CPUs, ~19 ms CPU
  // demand per transaction, thrashing knee near n=25).
  core::ClusterScenarioConfig stationary = BaseCluster(seed);
  stationary.arrival_rate = db::Schedule::Constant(400.0);

  core::ClusterScenarioConfig flash = BaseCluster(seed);
  flash.arrival_rate = core::FlashCrowdSchedule(320.0, 900.0, 40.0, 80.0);

  core::ClusterScenarioConfig degraded = BaseCluster(seed);
  degraded.arrival_rate = db::Schedule::Constant(400.0);
  degraded.nodes[0].cpu_speed = core::NodeSlowdownSchedule(0.3, 40.0, 100.0);

  RunScenario("stationary (400/s offered)", stationary, nullptr, nullptr,
              nullptr);

  core::ClusterResult jsq_parabola, threshold_parabola, random_none;
  RunScenario("flash crowd (320/s, spike to 900/s during [40s,80s))", flash,
              &jsq_parabola, &threshold_parabola, &random_none);

  RunScenario("degraded node (node 0 at 30% speed during [40s,100s))",
              degraded, nullptr, nullptr, nullptr);

  std::printf(
      "\nflash-crowd verdict:\n"
      "  join-shortest-queue + parabola : %.1f commits/s\n"
      "  threshold + parabola           : %.1f commits/s\n"
      "  random + none                  : %.1f commits/s\n",
      jsq_parabola.total_throughput, threshold_parabola.total_throughput,
      random_none.total_throughput);
  const bool jsq_wins =
      jsq_parabola.total_throughput > random_none.total_throughput;
  const bool threshold_wins =
      threshold_parabola.total_throughput > random_none.total_throughput;
  std::printf("  adaptive beats blind: %s\n",
              (jsq_wins || threshold_wins) ? "YES" : "NO");
  std::printf(
      "\nAn uncontrolled open node pushed past the thrashing knee cannot\n"
      "recover: committed throughput falls below the offered rate, so the\n"
      "admitted load keeps growing (paper section 1, at fleet scale). The\n"
      "per-node gates park the surplus in admission queues instead, and\n"
      "load-aware routing keeps the queues where capacity is.\n");
  return (jsq_wins || threshold_wins) ? 0 : 1;
}
