// Closed-loop elasticity under a flash crowd: a 4-node base fleet with a
// 2-node standby pool takes a 1100/s surge ([40s, 100s), ~1.8x base
// capacity) while node 0 crashes mid-surge at t=60 and repairs at t=110.
//
// The sweep runs the 2x2 of {fixed fleet | hysteresis autoscaler} x
// {membership oracle | heartbeat detector} over the checked-in
// specs/elasticity_flash.spec. Claims under test:
//
//  - the autoscaler provisions the standby pool off the measured gate
//    queue factor within a bounded lag and beats the fixed fleet on
//    surge-window throughput;
//  - the heartbeat detector pays a real detection window (misroutes to the
//    dead node, measurable detection latency) where the oracle pays none;
//  - the decision audit observes only: re-running the headline variant
//    with decisions.csv attached commits bit-identically.
//
//   $ ./build/bench/elasticity_flash_crowd
//   $ ./build/tools/alc_run specs/elasticity_flash.spec

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/cluster_experiment.h"
#include "core/spec.h"
#include "core/sweep.h"
#include "util/strformat.h"
#include "util/table.h"

namespace {

using namespace alc;

constexpr double kSurgeStart = 40.0;
constexpr double kSurgeEnd = 100.0;
constexpr double kMaxProvisionLag = 15.0;  // bounded-lag acceptance

core::ExperimentSpec LoadBenchSpec() {
  core::ExperimentSpec spec;
  std::string error;
  const std::string path =
      std::string(ALC_SOURCE_DIR) + "/specs/elasticity_flash.spec";
  if (!core::LoadSpecFile(path, &spec, &error)) {
    std::fprintf(stderr, "elasticity_flash_crowd: %s\n", error.c_str());
    std::abort();
  }
  return spec;
}

/// Mean aggregate throughput over monitor ticks inside the surge window.
double SurgeThroughput(const core::ClusterResult& result) {
  double sum = 0.0;
  int count = 0;
  for (const core::TrajectoryPoint& point : result.aggregate) {
    if (point.time <= kSurgeStart || point.time > kSurgeEnd) continue;
    sum += point.throughput;
    ++count;
  }
  return count > 0 ? sum / count : 0.0;
}

/// Time of the first autoscaler decision that grew the fleet, or -1.
double FirstProvisionTime(
    const std::vector<telemetry::DecisionRecord>& decisions) {
  for (const telemetry::DecisionRecord& record : decisions) {
    if (std::string(record.controller) == "hysteresis" &&
        record.new_limit > record.old_limit) {
      return record.time;
    }
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = bench::OutputDir(argc, argv);
  const std::string decisions_csv = out_dir + "/elasticity_flash.decisions.csv";
  bench::PrintHeader(
      "Closed-loop elasticity: flash crowd vs autoscaled standby pool",
      "an autoscaler on measured fleet signals + heartbeat failure "
      "detection recovers flash-crowd throughput that a fixed fleet "
      "cannot, paying only a bounded provisioning lag and detection "
      "window");

  core::SweepRunner runner(
      LoadBenchSpec(),
      {{"elasticity.scaler", {"none", "hysteresis"}},
       {"elasticity.detector", {"false", "true"}}});
  const std::vector<core::SweepPointResult> results =
      runner.Run(bench::SweepThreads(runner.num_points()));

  util::Table table({"fleet", "membership", "surge tput", "commits",
                     "provisions", "misroutes", "detect lat", "false susp"});
  core::ClusterResult fixed_hb, scaled_hb, scaled_oracle;
  for (const core::SweepPointResult& point : results) {
    const bool scaled = point.assignment[0].second == "hysteresis";
    const bool heartbeat = point.assignment[1].second == "true";
    const core::ClusterResult& result = point.result.cluster_result;
    if (scaled && heartbeat) scaled_hb = result;
    if (scaled && !heartbeat) scaled_oracle = result;
    if (!scaled && heartbeat) fixed_hb = result;
    table.AddRow(
        {scaled ? "autoscaled" : "fixed", heartbeat ? "heartbeat" : "oracle",
         util::StrFormat("%.1f/s", SurgeThroughput(result)),
         util::StrFormat("%llu",
                         static_cast<unsigned long long>(result.commits)),
         util::StrFormat("%llu",
                         static_cast<unsigned long long>(result.provisions)),
         util::StrFormat("%llu",
                         static_cast<unsigned long long>(result.misroutes)),
         util::StrFormat("%.2fs", result.detection_latency_mean),
         util::StrFormat(
             "%llu",
             static_cast<unsigned long long>(result.false_suspicions))});
  }
  table.Print(std::cout);

  // Headline variant once more with the decision audit attached: the CSV
  // is the artifact (detector verdicts + scaler actions) and the identical
  // commit count demonstrates observation-only telemetry.
  core::ExperimentSpec audited = LoadBenchSpec();
  audited.decisions_path = decisions_csv;
  const core::SpecRunResult audited_run = core::RunSpec(audited);
  const double provision_time = FirstProvisionTime(audited_run.decisions);
  const double provision_lag =
      provision_time >= 0.0 ? provision_time - kSurgeStart : -1.0;

  const double fixed_tput = SurgeThroughput(fixed_hb);
  const double scaled_tput = SurgeThroughput(scaled_hb);
  const bool beats_fixed = scaled_tput > fixed_tput;
  const bool lag_bounded =
      provision_lag >= 0.0 && provision_lag <= kMaxProvisionLag;
  const bool detection_measured = scaled_hb.declared_down > 0 &&
                                  scaled_hb.detection_latency_mean > 0.0 &&
                                  scaled_hb.misroutes > 0;
  const bool oracle_free = scaled_oracle.misroutes == 0;
  const bool audit_inert =
      audited_run.cluster_result.commits == scaled_hb.commits;

  std::printf(
      "\nverdict:\n"
      "  surge-window throughput, autoscaled + heartbeat : %.1f commits/s\n"
      "  surge-window throughput, fixed fleet + heartbeat: %.1f commits/s\n"
      "  closed loop beats fixed fleet: %s\n"
      "  first provision %.1fs after surge onset (bound %.0fs): %s\n"
      "  detection window measured (declared=%llu, latency=%.2fs, "
      "misroutes=%llu): %s\n"
      "  oracle pays no misroutes: %s\n"
      "  decision audit observation-only (commits %llu == %llu): %s\n",
      scaled_tput, fixed_tput, beats_fixed ? "YES" : "NO", provision_lag,
      kMaxProvisionLag, lag_bounded ? "YES" : "NO",
      static_cast<unsigned long long>(scaled_hb.declared_down),
      scaled_hb.detection_latency_mean,
      static_cast<unsigned long long>(scaled_hb.misroutes),
      detection_measured ? "YES" : "NO", oracle_free ? "YES" : "NO",
      static_cast<unsigned long long>(audited_run.cluster_result.commits),
      static_cast<unsigned long long>(scaled_hb.commits),
      audit_inert ? "YES" : "NO");
  std::printf(
      "\nThe surge arrives at t=%.0fs; the hysteresis loop sees the gate\n"
      "queue factor cross its threshold and walks the standby pool into\n"
      "the fleet (slow-start gates, cooldown between steps). Node 0 dies\n"
      "at t=60 with no oracle: the router keeps paying misroutes until\n"
      "the heartbeat detector declares it down and retraction re-homes\n"
      "its queue. decisions.csv: %s\n",
      kSurgeStart, decisions_csv.c_str());
  return beats_fixed && lag_bounded && detection_measured && oracle_free &&
                 audit_inert
             ? 0
             : 1;
}
