#ifndef ALC_BENCH_COMMON_H_
#define ALC_BENCH_COMMON_H_

// Shared scenario definitions for the figure-reproduction benches. All
// benches run the same calibrated paper-scale system (see db/config.h and
// DESIGN.md "Reconstructions / substitutions") so their numbers are
// comparable with each other.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "core/experiment.h"
#include "core/optimum.h"
#include "core/report.h"
#include "core/scenario.h"
#include "core/spec.h"
#include "core/sweep.h"

namespace alc::bench {

/// Directory for bench artifacts (decision CSVs, traces): `--out DIR` if
/// given, else ./bench_out — never the bare working directory, so repeated
/// bench runs stop littering the repository root. Created on first use.
inline std::string OutputDir(int argc, char** argv) {
  std::string dir = "bench_out";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") dir = argv[i + 1];
  }
  std::error_code error;
  std::filesystem::create_directories(dir, error);
  return dir;
}

/// The canonical stationary scenario: defaults of db/config.h, admission
/// bound range 5..750 (the paper's figure axes), measurement interval 1 s
/// (a few hundred departures per interval, paper section 5).
inline core::ScenarioConfig PaperScenario(uint64_t seed = 42) {
  core::ScenarioConfig scenario = core::DefaultScenario();
  scenario.system.seed = seed;
  scenario.duration = 300.0;
  scenario.warmup = 60.0;
  scenario.control.measurement_interval = 1.0;
  scenario.control.initial_limit = 50.0;

  scenario.control.is.initial_bound = 50.0;
  scenario.control.is.min_bound = 5.0;
  scenario.control.is.max_bound = 750.0;
  scenario.control.is.beta = 1.0;
  scenario.control.is.gamma = 10.0;
  scenario.control.is.delta = 25.0;

  scenario.control.pa.initial_bound = 50.0;
  scenario.control.pa.min_bound = 5.0;
  scenario.control.pa.max_bound = 750.0;
  scenario.control.pa.forgetting = 0.95;
  scenario.control.pa.dither = 15.0;

  scenario.control.iyer.initial_bound = 50.0;
  scenario.control.iyer.min_bound = 5.0;
  scenario.control.iyer.max_bound = 750.0;
  scenario.control.iyer.gain = 60.0;
  return scenario;
}

/// The figures-13/14 dynamic scenario: the optimum's position jumps
/// abruptly at t=333 and back at t=666 (query-fraction jump 0.3 -> 0.85,
/// which moves n_opt from ~195 to ~330 and roughly doubles the peak).
inline core::ScenarioConfig JumpScenario(uint64_t seed = 42) {
  core::ScenarioConfig scenario = PaperScenario(seed);
  scenario.duration = 1000.0;
  scenario.warmup = 50.0;
  scenario.dynamics.query_fraction =
      db::Schedule::Steps(0.30, {{333.0, 0.85}, {666.0, 0.30}});
  return scenario;
}

/// Search settings that keep the offline true-optimum sweeps affordable.
inline core::OptimumSearchConfig FastSearch() {
  core::OptimumSearchConfig search;
  search.n_lo = 10.0;
  search.n_hi = 750.0;
  search.coarse_points = 9;
  search.refine_rounds = 1;
  search.refine_points = 5;
  search.sim_duration = 60.0;
  search.sim_warmup = 15.0;
  return search;
}

/// The canonical scenarios as ExperimentSpecs, for SweepRunner-based
/// benches: same configurations as above, embedded as spec params so sweep
/// overrides ("node.control.controller", "node.control.pa.forgetting", ...)
/// compose with them.
inline core::ExperimentSpec PaperSpec(uint64_t seed = 42) {
  return core::SpecFromScenario(PaperScenario(seed));
}

inline core::ExperimentSpec JumpSpec(uint64_t seed = 42) {
  return core::SpecFromScenario(JumpScenario(seed));
}

/// Thread count for sweeping `points` grid points: all cores, capped at
/// the grid size. Per-point runs are bit-deterministic regardless.
inline int SweepThreads(int points) {
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  return std::max(1, std::min(points, cores));
}

inline void PrintHeader(const char* figure, const char* claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", figure);
  std::printf("Paper: Heiss & Wagner, VLDB 1991, pp. 47-54\n");
  std::printf("Claim: %s\n", claim);
  std::printf("================================================================\n");
}

}  // namespace alc::bench

#endif  // ALC_BENCH_COMMON_H_
