// perf_suite — the tracked performance rail. Times the hot paths that bound
// simulation speed (event queue push/pop, schedule/cancel churn, access-set
// sampling), one end-to-end paper-default simulation, and one real spec run
// (specs/node_failover.spec), and emits machine-readable BENCH_perf.json so
// speedups are pinned by numbers, not asserted. A global counting-allocator
// hook reports allocations per item: the event engine is supposed to run
// allocation-free at steady state, and --check turns that property into a
// hard failure so pessimizations fail loudly in CI.
//
//   $ ./build/bench/perf_suite --out BENCH_perf.json          # full run
//   $ ./build/bench/perf_suite --smoke --check                # CI smoke
//
// Self-contained (no google-benchmark dependency): the rail must exist on
// every build. The micro_benchmarks binary remains the high-resolution
// instrument when libbenchmark is available.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "core/spec.h"
#include "db/system.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "telemetry/histogram.h"
#include "telemetry/trace.h"
#include "util/strformat.h"
#include "workload/session.h"
#include "workload/source.h"

// ------------------------------------------------------------------------
// Counting allocator hook: every path to the heap in this binary bumps
// g_alloc_count. Only the count is tracked (no sizes map), so the hook adds
// two instructions per allocation and cannot perturb what it measures.
namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace alc;
using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct SuiteResult {
  std::string name;
  double wall_sec = 0.0;
  uint64_t items = 0;        // what "items" are depends on the bench
  double items_per_sec = 0.0;
  uint64_t allocs = 0;
  double allocs_per_item = 0.0;
};

SuiteResult Finish(const char* name, Clock::time_point start,
                   uint64_t items, uint64_t allocs_before) {
  // Read clock and counter before any of our own bookkeeping (the result's
  // name string allocates, which is why `name` arrives as a char pointer)
  // so the measurement covers only the bench body.
  const auto end = Clock::now();
  const uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  SuiteResult r;
  r.name = name;
  r.wall_sec = Seconds(start, end);
  r.items = items;
  r.items_per_sec = r.wall_sec > 0 ? static_cast<double>(items) / r.wall_sec
                                   : 0.0;
  r.allocs = allocs;
  r.allocs_per_item =
      items > 0 ? static_cast<double>(allocs) / static_cast<double>(items)
                : 0.0;
  return r;
}

/// 64 pushes with random times, then a full drain — the BM_EventQueuePushPop
/// shape. Items = pushes + pops.
SuiteResult BenchEventQueuePushPop(double target_sec) {
  sim::EventQueue queue;
  sim::RandomStream rng(1);
  int sink = 0;
  // Warm: populate slot/heap capacity so the measured region is steady
  // state.
  for (int i = 0; i < 64; ++i) {
    queue.Push(rng.NextDouble() * 100.0, [&sink] { ++sink; });
  }
  while (!queue.empty()) queue.Pop().cell();

  uint64_t items = 0;
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  do {
    for (int rep = 0; rep < 100; ++rep) {
      for (int i = 0; i < 64; ++i) {
        queue.Push(rng.NextDouble() * 100.0, [&sink] { ++sink; });
      }
      while (!queue.empty()) queue.Pop().cell();
      items += 128;
    }
  } while (Seconds(start, Clock::now()) < target_sec);
  if (sink < 0) std::abort();  // keep `sink` observable
  return Finish("event_queue_push_pop", start, items, allocs_before);
}

/// Schedule/cancel churn (the restart-timer pattern): half the pushed
/// events are cancelled, exercising generation stamps and compaction.
SuiteResult BenchEventQueueCancel(double target_sec) {
  sim::EventQueue queue;
  sim::RandomStream rng(1);
  std::vector<sim::EventHandle> handles;
  handles.reserve(64);
  int sink = 0;
  uint64_t items = 0;
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  do {
    for (int rep = 0; rep < 100; ++rep) {
      handles.clear();
      for (int i = 0; i < 64; ++i) {
        handles.push_back(
            queue.Push(rng.NextDouble() * 100.0, [&sink] { ++sink; }));
      }
      for (int i = 0; i < 64; i += 2) queue.Cancel(handles[i]);
      while (!queue.empty()) queue.Pop().cell();
      items += 128;
    }
  } while (Seconds(start, Clock::now()) < target_sec);
  if (sink < 0) std::abort();
  return Finish("event_queue_cancel", start, items, allocs_before);
}

/// Access-set sampling with the persistent stamp scratch (the
/// AccessPatternGenerator path). Items = sampled values.
SuiteResult BenchSampleWithoutReplacement(double target_sec) {
  sim::RandomStream rng(3);
  sim::SampleScratch scratch;
  std::vector<uint32_t> out;
  rng.SampleWithoutReplacement(16000, 32, &out, &scratch);  // warm buffers
  uint64_t items = 0;
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  do {
    for (int rep = 0; rep < 1000; ++rep) {
      rng.SampleWithoutReplacement(16000, 32, &out, &scratch);
      items += 32;
    }
  } while (Seconds(start, Clock::now()) < target_sec);
  return Finish("sample_without_replacement_k32", start, items, allocs_before);
}

/// Histogram recording alone: the per-commit cost the telemetry layer adds
/// to the hot path. Values are pre-drawn so the loop times Add(), not the
/// RNG. Must be exactly allocation-free (fixed bucket array).
SuiteResult BenchLogHistogramAdd(double target_sec) {
  telemetry::LogHistogram hist;
  sim::RandomStream rng(11);
  std::vector<double> values(4096);
  for (double& v : values) v = rng.NextExponential(0.1);
  uint64_t items = 0;
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  do {
    for (int rep = 0; rep < 100; ++rep) {
      for (const double v : values) hist.Add(v);
      items += values.size();
    }
  } while (Seconds(start, Clock::now()) < target_sec);
  if (hist.count() != items) std::abort();  // keep `hist` observable
  return Finish("log_histogram_add", start, items, allocs_before);
}

/// End-to-end paper-default closed system; items = simulated events over
/// the measured span (after a warmup that settles pools and trackers).
/// `per_phase` toggles the phase histograms and `trace` optionally attaches
/// a recorder, so the emitted JSON pins the telemetry overhead (histograms
/// on vs off, trace on vs off) as first-class numbers.
SuiteResult BenchEndToEndVariant(const char* name, double sim_span,
                                 bool per_phase,
                                 telemetry::TraceRecorder* trace) {
  sim::Simulator simulator;
  db::SystemConfig config;  // paper defaults
  config.seed = 5;
  config.telemetry.per_phase = per_phase;
  db::TransactionSystem system(&simulator, config);
  if (trace != nullptr) system.SetTraceRecorder(trace, 0);
  system.Start();
  // Warmup must cover a few think+execute cycles of all 850 terminals
  // (think times are several sim-seconds), or the measured window still
  // contains first-touch growth of per-terminal buffers.
  constexpr double kWarmup = 30.0;
  simulator.RunUntil(kWarmup);
  const uint64_t events_before = simulator.events_executed();
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  simulator.RunUntil(kWarmup + sim_span);
  const uint64_t events = simulator.events_executed() - events_before;
  return Finish(name, start, events, allocs_before);
}

SuiteResult BenchEndToEnd(double sim_span) {
  return BenchEndToEndVariant("end_to_end_paper_default", sim_span,
                              /*per_phase=*/true, nullptr);
}

/// The hybrid session source against a stub host that completes every
/// request after a constant service time: isolates the source's own
/// steady-state cost (session arrivals, per-user stream derivation,
/// think/issue loops, pooled slot recycling, telemetry recording). Items =
/// submitted requests. Must be exactly allocation-free once the pool has
/// reached its high-water mark — the run is deterministic (fixed seed,
/// sim-time measurement window), so the pinned count is machine-stable.
SuiteResult BenchSessionSource(double sim_span) {
  class StubHost : public workload::WorkloadHost {
   public:
    StubHost(sim::Simulator* sim, workload::WorkloadSource** source)
        : sim_(sim), source_(source) {}
    void SubmitArrival(const workload::Arrival& arrival) override {
      ++submitted_;
      const int32_t session = arrival.session;
      sim_->Schedule(0.005, [this, session] {
        (*source_)->OnComplete(session, 0.005, true);
      });
    }
    uint32_t keyspace() const override { return 16000; }
    uint64_t submitted() const { return submitted_; }

   private:
    sim::Simulator* sim_;
    workload::WorkloadSource** source_;
    uint64_t submitted_ = 0;
  };

  sim::Simulator simulator;
  workload::WorkloadSpec spec;
  spec.population = 1000000;
  spec.session_rate = db::Schedule::Constant(400.0);
  spec.txns_per_session = workload::Distribution::BoundedPareto(1.5, 1.0, 100.0);
  spec.think_time = workload::Distribution::Exponential(0.1);
  spec.affinity = 0.9;
  spec.affinity_keys = 64;
  workload::SessionWorkload source(workload::SessionWorkload::Mode::kHybrid,
                                   spec, 7);
  workload::WorkloadSource* source_ptr = &source;
  StubHost host(&simulator, &source_ptr);
  source.Start(&simulator, &host);
  // Warmup long enough for the session pool to reach its high-water mark
  // (Poisson arrivals overshoot the mean active count early on).
  simulator.RunUntil(60.0);
  const uint64_t submitted_before = host.submitted();
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  simulator.RunUntil(60.0 + sim_span);
  const uint64_t items = host.submitted() - submitted_before;
  return Finish("session_source_hybrid", start, items, allocs_before);
}

/// One real bench through the spec path: the node-failover cluster run
/// (crash + displacement + rejoin mid flash crowd). Items = commits.
SuiteResult BenchSpecNodeFailover(const std::string& specs_dir) {
  core::ExperimentSpec spec;
  std::string error;
  if (!core::LoadSpecFile(specs_dir + "/node_failover.spec", &spec, &error)) {
    std::fprintf(stderr, "perf_suite: %s\n", error.c_str());
    std::exit(1);
  }
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  const core::SpecRunResult result = core::RunSpec(spec);
  return Finish("spec_node_failover", start, result.commits(), allocs_before);
}

/// The closed-loop elasticity headline through the spec path: heartbeat
/// detection, autoscaler provisioning/draining the standby pool, slow-start
/// ramps, and a mid-surge crash — the whole fleet-level control loop on top
/// of the failover machinery. Items = commits.
SuiteResult BenchSpecElasticity(const std::string& specs_dir) {
  core::ExperimentSpec spec;
  std::string error;
  if (!core::LoadSpecFile(specs_dir + "/elasticity_flash.spec", &spec,
                          &error)) {
    std::fprintf(stderr, "perf_suite: %s\n", error.c_str());
    std::exit(1);
  }
  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const auto start = Clock::now();
  const core::SpecRunResult result = core::RunSpec(spec);
  return Finish("spec_elasticity_flash", start, result.commits(),
                allocs_before);
}

std::string ToJson(const std::vector<SuiteResult>& results, bool smoke) {
  std::string json = "{\n  \"schema\": 1,\n";
  json += util::StrFormat("  \"smoke\": %s,\n", smoke ? "true" : "false");
  // Pre-refactor reference points (PR 5, std::function event queue with an
  // unordered_set cancellation side table), captured on the development
  // machine with the same benchmark bodies. Kept in every emitted file so
  // a BENCH_perf.json always carries before and after.
  json +=
      "  \"baseline_pr5\": {\n"
      "    \"event_queue_push_pop_items_per_sec\": 16520000,\n"
      "    \"end_to_end_paper_default_items_per_sec\": 3680000,\n"
      "    \"end_to_end_allocs_per_item\": 2.96,\n"
      "    \"fig01_thrashing_curve_wall_sec\": 3.38\n"
      "  },\n";
  // Context that doesn't fit a number column. The LTO delta is measured by
  // running this suite from a -DALC_ENABLE_LTO=ON build (the CI lto leg
  // builds one); re-measure when the engine's TU structure changes.
  json +=
      "  \"notes\": [\n"
      "    \"ALC_ENABLE_LTO=ON vs plain Release (same machine, serial "
      "runs): event_queue_push_pop +16%, event_queue_cancel +10%, "
      "end_to_end_paper_default +5%, spec_node_failover +11%, "
      "others within noise; allocation counts identical (0 where pinned)\",\n"
      "    \"session_source_hybrid pins the SessionWorkload hybrid source "
      "at 0 allocs/request in steady state (pooled session slots)\"\n"
      "  ],\n";
  json += "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const SuiteResult& r = results[i];
    json += util::StrFormat(
        "    {\"name\": \"%s\", \"wall_sec\": %.6f, \"items\": %llu, "
        "\"items_per_sec\": %.1f, \"allocs\": %llu, "
        "\"allocs_per_item\": %.6f}%s\n",
        r.name.c_str(), r.wall_sec,
        static_cast<unsigned long long>(r.items), r.items_per_sec,
        static_cast<unsigned long long>(r.allocs), r.allocs_per_item,
        i + 1 < results.size() ? "," : "");
  }
  json += "  ]\n}\n";
  return json;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--smoke] [--check] [--out FILE] [--specs DIR]\n"
               "  --smoke    short iterations (CI); full runs otherwise\n"
               "  --check    fail (exit 1) if the event engine allocates at\n"
               "             steady state or end-to-end allocs/event regress\n"
               "  --out F    write JSON to F (default BENCH_perf.json)\n"
               "  --specs D  spec directory (default: source tree specs/)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  std::string out_path = "BENCH_perf.json";
  std::string specs_dir = std::string(ALC_SOURCE_DIR) + "/specs";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--specs" && i + 1 < argc) {
      specs_dir = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }

  const double micro_sec = smoke ? 0.1 : 1.0;
  const double sim_span = smoke ? 3.0 : 20.0;

  std::vector<SuiteResult> results;
  results.push_back(BenchEventQueuePushPop(micro_sec));
  results.push_back(BenchEventQueueCancel(micro_sec));
  results.push_back(BenchSampleWithoutReplacement(micro_sec));
  results.push_back(BenchLogHistogramAdd(micro_sec));
  results.push_back(BenchEndToEnd(sim_span));
  // Telemetry overhead rail: the same simulation with per-phase histograms
  // disabled and with a trace recorder attached, so a regression in either
  // direction (telemetry cost, or disabled-path cost) is pinned by numbers.
  results.push_back(BenchEndToEndVariant("end_to_end_telemetry_off", sim_span,
                                         /*per_phase=*/false, nullptr));
  {
    telemetry::TraceRecorder trace;
    results.push_back(BenchEndToEndVariant("end_to_end_trace", sim_span,
                                           /*per_phase=*/true, &trace));
  }
  results.push_back(BenchSessionSource(smoke ? 20.0 : 120.0));
  results.push_back(BenchSpecNodeFailover(specs_dir));
  results.push_back(BenchSpecElasticity(specs_dir));

  for (const SuiteResult& r : results) {
    std::printf("%-32s %12.0f items/s  %8.3fs  %.4f allocs/item\n",
                r.name.c_str(), r.items_per_sec, r.wall_sec,
                r.allocs_per_item);
  }

  const std::string json = ToJson(results, smoke);
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "perf_suite: cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (check) {
    int failures = 0;
    for (const SuiteResult& r : results) {
      // The engine microbenches must be exactly allocation-free at steady
      // state; the end-to-end run tolerates the amortized tail of growing
      // stat containers. Thresholds are machine-independent (counts, not
      // times), so this check is stable on shared CI runners.
      // The trace variant tolerates the same amortized tail: the recorder's
      // event buffer grows geometrically, a handful of allocations across
      // millions of events.
      // The failover spec run carries a higher per-commit budget: node
      // crash/rejoin churn rebuilds per-epoch routing state, and the spec
      // layer snapshots trajectories per node (currently ~0.99/commit with
      // the chunked slot pool; budget leaves headroom without masking a
      // leaky hot path).
      // The elasticity flash-crowd run adds queue-factor shedding (each
      // retracted transaction is resubmitted on another node) plus
      // detector-driven membership churn on top — measured ~1.71/commit
      // since the slot pool moved to chunked storage and the gate queue to
      // a ring buffer (was ~4.08 when every migrated slot cost a deque
      // block and every drain/refill cycle churned queue blocks).
      // The session source is pinned at exactly zero too: session state is
      // pooled and the warmup covers the pool's high-water mark, so any
      // steady-state allocation is a regression in the source itself.
      const double limit =
          (r.name == "event_queue_push_pop" || r.name == "event_queue_cancel" ||
           r.name == "sample_without_replacement_k32" ||
           r.name == "session_source_hybrid" ||
           r.name == "log_histogram_add")
              ? 0.0
              : (r.name == "end_to_end_paper_default" ||
                         r.name == "end_to_end_telemetry_off" ||
                         r.name == "end_to_end_trace"
                     ? 0.05
                     : (r.name == "spec_node_failover"
                            ? 1.05
                            : (r.name == "spec_elasticity_flash" ? 1.90
                                                                 : -1.0)));
      if (limit >= 0.0 && r.allocs_per_item > limit) {
        std::fprintf(stderr,
                     "perf_suite: CHECK FAILED: %s allocates %.6f per item "
                     "(limit %.6f) — the hot path regressed\n",
                     r.name.c_str(), r.allocs_per_item, limit);
        ++failures;
      }
    }
    if (failures > 0) return 1;
    std::printf("allocation checks passed\n");
  }
  return 0;
}
