// E12 — Section 1, option 3 vs option 4: the static "rules of thumb"
// (Tay's k^2 n / D < 1.5, Iyer's conflicts/txn <= 0.75) against the
// feedback controllers, across three workload mixes. The paper's point:
// the rules are model-bound and need not hold for all load situations,
// while the feedback controllers are model independent.
//
// The controller dimension is a SweepRunner axis over registry names: one
// spec, seven one-line overrides, no per-controller plumbing.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "core/report.h"
#include "util/strformat.h"
#include "util/table.h"

int main() {
  using namespace alc;
  bench::PrintHeader(
      "Section 1: rules of thumb vs feedback control, three workloads",
      "feedback controllers stay near-optimal where static rules misfire");

  struct Mix {
    const char* name;
    int k;
    double query_fraction;
    double write_fraction;
  };
  const std::vector<Mix> mixes = {
      {"update-heavy (k=16, q=0.3, w=0.25)", 16, 0.30, 0.25},
      {"query-heavy  (k=16, q=0.85, w=0.25)", 16, 0.85, 0.25},
      {"long txns    (k=24, q=0.3, w=0.35)", 24, 0.30, 0.35},
  };
  const std::vector<std::string> controllers = {
      "none",
      "fixed",
      "tay-rule",
      "iyer-rule",
      "incremental-steps",
      "parabola-approximation",
      "golden-section",
  };

  for (const Mix& mix : mixes) {
    core::ScenarioConfig base = bench::PaperScenario();
    base.system.logical.accesses_per_txn = mix.k;
    base.system.logical.query_fraction = mix.query_fraction;
    base.system.logical.write_fraction = mix.write_fraction;
    base.dynamics = db::WorkloadDynamics::FromConfig(base.system.logical);
    base.control.fixed_limit = 195.0;  // tuned for the *default* mix
    base.control.gs.min_bound = 5.0;
    base.control.gs.max_bound = 750.0;
    base.control.gs.min_bracket = 60.0;

    core::OptimumFinder finder(base, bench::FastSearch());
    const core::OptimumResult optimum = finder.FindAt(0.0);
    std::printf("\nworkload: %s  (true n_opt=%.0f, peak=%.1f/s)\n", mix.name,
                optimum.n_opt, optimum.peak_throughput);

    core::SweepRunner runner(core::SpecFromScenario(base),
                             {{"node.control.controller", controllers}});
    const std::vector<core::SweepPointResult> results =
        runner.Run(bench::SweepThreads(runner.num_points()));

    util::Table table(
        {"controller", "throughput", "T/T_peak", "mean load", "abort ratio"});
    for (const core::SweepPointResult& point : results) {
      const core::ExperimentResult& result = point.result.single;
      table.AddRow({point.assignment[0].second,
                    util::StrFormat("%.1f", result.mean_throughput),
                    util::StrFormat("%.2f", result.mean_throughput /
                                                optimum.peak_throughput),
                    util::StrFormat("%.0f", result.mean_active),
                    util::StrFormat("%.3f", result.abort_ratio)});
    }
    table.Print(std::cout);
  }
  std::printf(
      "\nshape checks: 'none' thrashes everywhere; 'fixed' is good only on "
      "the mix it was tuned for;\nTay's rule binds k^2 n/D regardless of "
      "where the real bottleneck is; IS/PA stay near T_peak on all mixes.\n");
  return 0;
}
