// Data placement x routing: partitioned + replicated granule space under a
// hot-partition skewed arrival stream. Sweeps 3 placement strategies x 4
// routing policies on a 4-node cluster, each node behind its own adaptive
// (Parabola) admission gate:
//
//   placements  hash         keys hashed across 16 partitions, 1 copy each
//               range        contiguous key blocks, 1 copy each
//               replicated   range blocks with replication factor r=3
//   routings    join-shortest-queue   placement-blind, load-aware
//               power-of-d (d=2)      sampled load-aware over replica set
//               locality              home node of most-touched partition,
//                                     load-blind
//               locality-threshold    locality until the home gate exceeds
//                                     its n*, then the cheapest replica
//
// The arrival stream is skewed: 80% of accesses land in the first 1/16 of
// the keyspace (= partition 0 under range placement), so "where the data
// lives" and "where the load is" pull in opposite directions. Accessing a
// granule the executing node does not store costs the executing node an
// extra CPU burst plus a network round trip, and costs the granule's home
// node serve CPU per request (primary-serves model).
//
// Claim under test (headline): under hot-partition skew over a replicated
// placement, locality-threshold routing beats BOTH pure JSQ (placement-
// blind: pays the remote penalty on most accesses) and pure locality
// (load-blind: drowns the hot partition's home node) in committed
// transactions per second.
//
//   $ ./build/bench/placement_routing

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/cluster_experiment.h"
#include "core/cluster_scenario.h"
#include "placement/catalog.h"
#include "util/strformat.h"
#include "util/table.h"

namespace {

using namespace alc;

constexpr int kNumNodes = 4;
constexpr int kNumPartitions = 16;
// 600 granules per partition: the hot partition is large enough that
// hot-key conflicts stay moderate — the comparison should hinge on data
// placement economics, not on a 2PL/OCC meltdown.
constexpr uint32_t kDbSize = 9600;

/// Downscaled node (4 CPUs), same scale as cluster_routing.
core::ClusterNodeScenario BenchNode(uint64_t seed) {
  core::ClusterNodeScenario node;
  node.system.physical.num_cpus = 4;
  node.system.physical.cpu_init_mean = 0.001;
  node.system.physical.cpu_access_mean = 0.001;
  node.system.physical.cpu_commit_mean = 0.001;
  node.system.physical.cpu_write_commit_mean = 0.004;
  node.system.physical.io_time = 0.008;
  node.system.physical.restart_delay_mean = 0.02;
  node.system.logical.db_size = kDbSize;
  node.system.logical.accesses_per_txn = 8;
  node.system.logical.query_fraction = 0.3;
  node.system.logical.write_fraction = 0.4;
  node.system.seed = seed;
  node.dynamics = db::WorkloadDynamics::FromConfig(node.system.logical);
  node.control.name = "parabola-approximation";
  node.control.measurement_interval = 0.5;
  node.control.initial_limit = 20.0;
  node.control.pa.initial_bound = 20.0;
  node.control.pa.min_bound = 2.0;
  node.control.pa.max_bound = 200.0;
  node.control.pa.dither = 5.0;
  return node;
}

/// The skewed global workload: 80% of accesses hit the first 1/16 of the
/// keyspace — exactly partition 0 under the range key map, so the typical
/// transaction is single-partition when executed on one of that
/// partition's replicas. Writes are kept light so capacity is bound by CPU
/// and remote latency, not by hot-key aborts (which would reward
/// placement-blind spreading for the wrong reason: scattered copies do not
/// conflict in this model).
db::LogicalConfig SkewedWorkload() {
  db::LogicalConfig workload;
  workload.db_size = kDbSize;
  workload.accesses_per_txn = 8;
  workload.query_fraction = 0.5;
  workload.write_fraction = 0.1;
  workload.hotspot_access_prob = 0.8;
  workload.hotspot_size_fraction = 1.0 / kNumPartitions;
  return workload;
}
core::ClusterScenarioConfig BaseCluster(uint64_t seed,
                                        placement::PlacementKind kind) {
  core::ClusterScenarioConfig scenario;
  for (int i = 0; i < kNumNodes; ++i) {
    scenario.nodes.push_back(BenchNode(core::DecorrelatedNodeSeed(seed, i)));
  }
  scenario.seed = seed;
  scenario.duration = 120.0;
  scenario.warmup = 20.0;
  scenario.arrival_rate = db::Schedule::Constant(800.0);

  scenario.placement_enabled = true;
  scenario.placement.placement.kind = kind;
  scenario.placement.placement.num_partitions = kNumPartitions;
  scenario.placement.placement.replication_factor = 3;
  scenario.placement.workload = SkewedWorkload();
  // A remote access is an RPC to the granule's home: the executing node
  // pays marshalling CPU and a network round trip on top of the local
  // I/O, and the home node pays serve CPU per request — shipping hot work
  // off the replicas does not relieve the data holders.
  scenario.remote_access.cpu_penalty = 0.003;
  scenario.remote_access.latency = 0.016;
  scenario.remote_access.serve_cpu = 0.004;
  return scenario;
}

struct Cell {
  core::ClusterResult result;
  bool valid = false;
};

}  // namespace

int main() {
  bench::PrintHeader(
      "Data placement x locality-aware routing under hot-partition skew",
      "locality-threshold routing over a replicated placement beats both "
      "placement-blind JSQ and load-blind locality");

  const uint64_t seed = 42;
  const std::vector<placement::PlacementKind> placements = {
      placement::PlacementKind::kHash,
      placement::PlacementKind::kRange,
      placement::PlacementKind::kReplicated,
  };
  const std::vector<std::string> routings = {
      "join-shortest-queue",
      "power-of-d",
      "locality",
      "locality-threshold",
  };

  Cell headline_jsq, headline_locality, headline_threshold;

  util::Table table({"placement", "routing", "throughput", "p-mean response",
                     "remote frac", "abort ratio", "commits"});
  for (placement::PlacementKind kind : placements) {
    for (const std::string& routing : routings) {
      core::ClusterScenarioConfig scenario = BaseCluster(seed, kind);
      scenario.routing_name = routing;
      const core::ClusterResult result =
          core::ClusterExperiment(scenario).Run();
      table.AddRow(
          {placement::PlacementKindName(kind),
           routing,
           util::StrFormat("%.1f/s", result.total_throughput),
           util::StrFormat("%.3fs", result.mean_response),
           util::StrFormat("%.3f", result.remote_frac),
           util::StrFormat("%.3f", result.abort_ratio),
           util::StrFormat("%llu",
                           static_cast<unsigned long long>(result.commits))});
      if (kind == placement::PlacementKind::kReplicated) {
        if (routing == "join-shortest-queue") {
          headline_jsq = {result, true};
        } else if (routing == "locality") {
          headline_locality = {result, true};
        } else if (routing == "locality-threshold") {
          headline_threshold = {result, true};
        }
      }
    }
  }
  table.Print(std::cout);

  std::printf(
      "\nheadline (replicated placement, r=3, hot-partition skew):\n"
      "  locality-threshold : %.1f commits/s (remote frac %.3f)\n"
      "  join-shortest-queue: %.1f commits/s (remote frac %.3f)\n"
      "  locality           : %.1f commits/s (remote frac %.3f)\n",
      headline_threshold.result.total_throughput,
      headline_threshold.result.remote_frac,
      headline_jsq.result.total_throughput, headline_jsq.result.remote_frac,
      headline_locality.result.total_throughput,
      headline_locality.result.remote_frac);

  const bool beats_jsq = headline_threshold.valid && headline_jsq.valid &&
                         headline_threshold.result.total_throughput >
                             headline_jsq.result.total_throughput;
  const bool beats_locality =
      headline_threshold.valid && headline_locality.valid &&
      headline_threshold.result.total_throughput >
          headline_locality.result.total_throughput;
  std::printf("  beats placement-blind JSQ : %s\n", beats_jsq ? "YES" : "NO");
  std::printf("  beats load-blind locality : %s\n",
              beats_locality ? "YES" : "NO");
  std::printf(
      "\nJSQ spreads the hot partition's work onto the node that stores no\n"
      "copy of it: those transactions pay the remote CPU + round-trip tax\n"
      "and tax the home node's CPU with serve requests, so the spill is\n"
      "net-negative. Pure locality keeps every access local but funnels\n"
      "the hot load into one admission gate. Locality-threshold uses the\n"
      "gate's self-tuned n* as the spill signal: local while the home node\n"
      "has headroom, cheapest replica once it does not.\n");
  return (beats_jsq && beats_locality) ? 0 : 1;
}
