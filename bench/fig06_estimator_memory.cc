// E5 — Figure 6: "Alternative shapes of the estimator's memory". The same
// amount of information can come from one long interval with no aging
// (alpha=0 in the paper's illustration: only the latest long-interval
// measurement counts) or several short intervals with exponential aging
// (alpha=0.8). The paper argues for short intervals + large alpha because
// least squares needs variation across measurements.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "control/rls.h"
#include "sim/random.h"
#include "util/strformat.h"
#include "util/table.h"

int main() {
  using namespace alc;
  bench::PrintHeader(
      "Figure 6: estimator memory shapes (interval length vs aging)",
      "short intervals with alpha=0.8 weight the same information better "
      "than one 5x longer interval with alpha=0");

  // The paper's picture: weight of the sample ending s time units ago.
  util::Table weights({"age (intervals)", "long dt, alpha=0",
                       "short dt, alpha=0.8"});
  for (int age = 0; age <= 15; ++age) {
    // Long-interval estimator: one interval spans 5 short ones; only the
    // most recent long interval has weight.
    const double long_weight = age < 5 ? 1.0 : 0.0;
    const double short_weight = std::pow(0.8, age);
    weights.AddRow({util::StrFormat("%d", age),
                    util::StrFormat("%.3f", long_weight),
                    util::StrFormat("%.3f", short_weight)});
  }
  weights.Print(std::cout);
  // "Area below the lines" = amount of information used.
  std::printf("\ninformation (sum of weights): long=%.1f, short=%.2f\n", 5.0,
              (1.0 - std::pow(0.8, 16)) / (1.0 - 0.8));

  // Quantitative version: track a drifting parabola vertex with both
  // estimator configurations fed identical per-unit-time information.
  std::printf("\ntracking a drifting optimum with equal information:\n");
  auto run = [](int batch, double alpha) {
    control::RecursiveLeastSquares rls(3, alpha, 1e6);
    sim::RandomStream rng(3);
    double err_sum = 0.0;
    int err_n = 0;
    for (int t = 0; t < 600; ++t) {
      const double n_opt = 100.0 + 0.15 * t;  // drifting optimum
      // One sample per `batch` steps, averaged over the batch (long
      // intervals smooth more but lag more).
      if (t % batch == batch - 1) {
        double x_mean = 0.0, y_mean = 0.0;
        for (int b = 0; b < batch; ++b) {
          const double x = 60.0 + rng.NextDouble() * 120.0;
          x_mean += x;
          y_mean += 200.0 - 0.01 * (x - n_opt) * (x - n_opt) +
                    rng.NextNormal(0.0, 2.0);
        }
        x_mean /= batch;
        y_mean /= batch;
        rls.Update({1.0, x_mean / 300.0,
                    (x_mean / 300.0) * (x_mean / 300.0)},
                   y_mean);
        const auto& c = rls.coefficients();
        if (t > 200 && c[2] < 0.0) {
          const double vertex = -c[1] / (2.0 * c[2]) * 300.0;
          err_sum += std::fabs(vertex - n_opt);
          ++err_n;
        }
      }
    }
    return err_n > 0 ? err_sum / err_n : 1e9;
  };
  const double long_interval_error = run(5, 1.0);
  const double short_interval_error = run(1, 0.8);
  std::printf("  long dt (batch=5, alpha=1.0): mean vertex error %.1f\n",
              long_interval_error);
  std::printf("  short dt (batch=1, alpha=0.8): mean vertex error %.1f\n",
              short_interval_error);
  std::printf("shape check: short intervals + aging should track the drift "
              "at least as well (%.1f <= %.1f expected)\n",
              short_interval_error, long_interval_error * 1.5);
  return 0;
}
