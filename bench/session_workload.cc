// Session workload under a flash-crowd surge: adaptive vs fixed admission.
//
// The hybrid session source opens user sessions as a Poisson process on a
// schedule-driven rate; each session issues a heavy-tailed burst of
// transactions with think times in between. A flash crowd at the *session*
// level is nastier than the open-arrival flash crowd bench/cluster_routing
// throws at the fleet: every surge session keeps re-offering work until
// its burst finishes, so overload persists after the arrival spike ends
// (the paper's closed-system feedback, now at cluster scale).
//
// Claim under test: per-node adaptive admission (Parabola) holds the fleet
// at its throughput peak through the surge, while a fixed gate set for the
// pre-surge load thrashes — same claim as the paper's Figure 7/8
// pathology, driven by the session model instead of a terminal population.
//
// The fleet is the specs/diurnal_1m.spec shape at bench scale (8 nodes,
// shorter horizon, flash-crowd session rate instead of the diurnal
// sinusoid):
//
//   $ ./build/bench/session_workload

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/cluster_experiment.h"
#include "core/spec.h"
#include "core/sweep.h"
#include "util/strformat.h"
#include "util/table.h"

namespace {

using namespace alc;

constexpr double kSurgeStart = 60.0;
constexpr double kSurgeEnd = 90.0;

/// 8-node locality-routed placement fleet driven by the hybrid session
/// source; the session-opening rate triples during [60s, 90s).
core::ExperimentSpec SurgeSpec() {
  core::ExperimentSpec spec;
  std::string error;
  const std::string source_dir = ALC_SOURCE_DIR;
  if (!core::LoadSpecFile(source_dir + "/specs/diurnal_1m.spec", &spec,
                          &error)) {
    std::fprintf(stderr, "diurnal_1m.spec: %s\n", error.c_str());
    std::abort();
  }
  // Bench scale: 8 nodes, flash-crowd session rate sized to the smaller
  // fleet (~2x capacity during the surge), 16 partitions.
  const auto overrides = std::vector<std::pair<std::string, std::string>>{
      {"name", "session-surge"},
      {"duration", "150"},
      {"warmup", "20"},
      {"workload.session_rate",
       util::StrFormat("steps(120; %g:900, %g:120)", kSurgeStart, kSurgeEnd)},
      {"placement.num_partitions", "16"},
      {"placement.workload.db_size", "4800"},
      {"node.logical.db_size", "4800"},
      // Update-heavy surge: data contention is what makes over-admission
      // expensive (the paper's thrashing mechanism); the diurnal demo's
      // read-mostly mix never pushes the fleet past its lock knee.
      {"placement.workload.query_fraction", "0.3"},
      {"placement.workload.write_fraction", "0.4"},
  };
  // Bench-scale fleet: keep the first 8 of the 256 cloned nodes (their
  // seeds are already decorrelated by the spec's count-expansion).
  spec.nodes.resize(8);
  for (const auto& [key, value] : overrides) {
    if (!core::ApplySpecOverride(&spec, key, value, &error)) {
      std::fprintf(stderr, "override %s: %s\n", key.c_str(), error.c_str());
      std::abort();
    }
  }
  return spec;
}

/// Mean aggregate throughput over ticks in (from, to] (commits/s).
double ThroughputBetween(const core::ClusterResult& result, double from,
                         double to) {
  double sum = 0.0;
  int count = 0;
  for (const core::TrajectoryPoint& point : result.aggregate) {
    if (point.time <= from || point.time > to) continue;
    sum += point.throughput;
    ++count;
  }
  return count > 0 ? sum / count : 0.0;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Session workload: flash-crowd surge, adaptive vs fixed admission",
      "a surge of user sessions keeps re-offering its burst until it "
      "finishes; adaptive per-node gates ride the surge at the throughput "
      "peak while gates fixed for the pre-surge load thrash");

  // Both gates start at the same loose limit — plenty for the light
  // pre-surge load, far past the per-node optimum under surge contention.
  // The adaptive controller walks down from it; the fixed gate cannot.
  core::SweepRunner runner(
      SurgeSpec(),
      {{"node.control.controller", {"fixed", "parabola-approximation"}},
       {"node.control.initial_limit", {"150"}}});
  const std::vector<core::SweepPointResult> results =
      runner.Run(bench::SweepThreads(runner.num_points()));

  util::Table table({"admission", "T overall", "T surge", "T post-surge",
                     "p99 resp", "commits"});
  core::ClusterResult fixed, adaptive;
  for (const core::SweepPointResult& point : results) {
    const bool is_adaptive =
        point.assignment[0].second == "parabola-approximation";
    const core::ClusterResult& result = point.result.cluster_result;
    (is_adaptive ? adaptive : fixed) = result;
    table.AddRow(
        {is_adaptive ? "adaptive (parabola)" : "fixed gate",
         util::StrFormat("%.1f/s", result.total_throughput),
         util::StrFormat("%.1f/s",
                         ThroughputBetween(result, kSurgeStart, kSurgeEnd)),
         util::StrFormat("%.1f/s",
                         ThroughputBetween(result, kSurgeEnd, 1e30)),
         util::StrFormat("%.3fs", result.response_hist.Quantile(0.99)),
         util::StrFormat("%llu",
                         static_cast<unsigned long long>(result.commits))});
  }
  table.Print(std::cout);

  const double fixed_surge = ThroughputBetween(fixed, kSurgeStart, kSurgeEnd);
  const double adaptive_surge =
      ThroughputBetween(adaptive, kSurgeStart, kSurgeEnd);
  std::printf(
      "\nverdict:\n"
      "  surge-window throughput, adaptive : %.1f commits/s\n"
      "  surge-window throughput, fixed    : %.1f commits/s\n"
      "  adaptive admission rides the session surge: %s\n",
      adaptive_surge, fixed_surge,
      adaptive_surge >= fixed_surge ? "YES" : "NO");
  std::printf(
      "\nSurge sessions that are refused admission do not vanish — they\n"
      "wait at the gate and re-offer, exactly the feedback loop the\n"
      "paper's closed model captures. The adaptive gate converts that\n"
      "pressure into bounded in-system load at the peak; the fixed gate\n"
      "admits by a stale constant and drives the nodes into thrashing\n"
      "territory during the surge.\n");
  return adaptive_surge >= fixed_surge ? 0 : 1;
}
