// Fault-storm robustness bake-off over specs/fault_storm.spec: the
// elasticity-flash fleet takes its 780/s surge while the [fault] injector
// throws a correlated storm at the measured path (45% probe loss fleet-
// wide, probe-delay spikes, a 10 s asymmetric partition, a 4x disk stall,
// a half-speed CPU window, and a real crash of node 0 at t=60).
//
// Two claims under test:
//
//  - detection: the phi-accrual 2-of-3 quorum detector false-declares
//    strictly fewer live nodes down than the PR 9 consecutive-miss
//    machine under the same storm, while still detecting the real crash;
//  - response: bounded retry/backoff + the class-tiered degradation
//    ladder beat the no-retry/no-shed baseline on surge-window commits;
//
// plus the standing determinism bar: the storm run is bit-exact run to
// run (decisions-CSV FNV fingerprint) and attaching the decision audit +
// trace does not change a single commit.
//
//   $ ./build/bench/fault_storm
//   $ ./build/tools/alc_run specs/fault_storm.spec

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/cluster_experiment.h"
#include "core/export.h"
#include "core/spec.h"
#include "telemetry/audit.h"
#include "util/strformat.h"
#include "util/table.h"

namespace {

using namespace alc;

constexpr double kSurgeStart = 40.0;
constexpr double kSurgeEnd = 100.0;

core::ExperimentSpec LoadStormSpec() {
  core::ExperimentSpec spec;
  std::string error;
  const std::string path =
      std::string(ALC_SOURCE_DIR) + "/specs/fault_storm.spec";
  if (!core::LoadSpecFile(path, &spec, &error)) {
    std::fprintf(stderr, "fault_storm: %s\n", error.c_str());
    std::abort();
  }
  return spec;
}

void Override(core::ExperimentSpec* spec, const std::string& key,
              const std::string& value) {
  std::string error;
  if (!core::ApplySpecOverride(spec, key, value, &error)) {
    std::fprintf(stderr, "fault_storm: %s\n", error.c_str());
    std::abort();
  }
}

/// Mean aggregate throughput over monitor ticks inside the surge window.
double SurgeThroughput(const core::ClusterResult& result) {
  double sum = 0.0;
  int count = 0;
  for (const core::TrajectoryPoint& point : result.aggregate) {
    if (point.time <= kSurgeStart || point.time > kSurgeEnd) continue;
    sum += point.throughput;
    ++count;
  }
  return count > 0 ? sum / count : 0.0;
}

/// FNV-1a 64-bit (the same fingerprint tests/fault_test.cc pins).
uint64_t Fnv1a(const std::string& text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string DecisionsCsv(const core::SpecRunResult& result) {
  std::ostringstream out;
  telemetry::WriteDecisionsCsv(out, result.decisions);
  return out.str();
}

void AddRow(util::Table* table, const char* name,
            const core::ClusterResult& r) {
  table->AddRow(
      {name, util::StrFormat("%.1f/s", SurgeThroughput(r)),
       util::StrFormat("%llu", static_cast<unsigned long long>(r.commits)),
       util::StrFormat("%llu",
                       static_cast<unsigned long long>(r.false_declarations)),
       util::StrFormat("%llu",
                       static_cast<unsigned long long>(r.declared_down)),
       util::StrFormat("%.2fs", r.detection_latency_mean),
       util::StrFormat("%llu", static_cast<unsigned long long>(r.retries)),
       util::StrFormat("%llu",
                       static_cast<unsigned long long>(r.dead_letters)),
       util::StrFormat("%llu", static_cast<unsigned long long>(
                                   r.shed_query + r.shed_update))});
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = bench::OutputDir(argc, argv);
  const std::string decisions_csv = out_dir + "/fault_storm.decisions.csv";
  bench::PrintHeader(
      "Fault storm: hardened detection + response vs PR 9 baselines",
      "under injected probe loss/delay, partition, gray degradation and a "
      "real crash, phi-accrual quorum detection false-declares strictly "
      "less than consecutive-miss counting, and bounded retry + tiered "
      "shedding recover surge-window commits the baseline loses");

  // The four variants share the spec (same storm, same seed); only the
  // subsystem under test is swapped out.
  core::ExperimentSpec hardened = LoadStormSpec();

  core::ExperimentSpec consecutive = LoadStormSpec();
  Override(&consecutive, "elasticity.hb.kind", "consecutive");
  Override(&consecutive, "elasticity.hb.observers", "1");
  Override(&consecutive, "elasticity.hb.quorum", "1");

  core::ExperimentSpec no_response = LoadStormSpec();
  Override(&no_response, "retry.enabled", "false");
  Override(&no_response, "degrade.enabled", "false");

  const core::SpecRunResult hardened_run = core::RunSpec(hardened);
  const core::SpecRunResult consecutive_run = core::RunSpec(consecutive);
  const core::SpecRunResult no_response_run = core::RunSpec(no_response);
  const core::ClusterResult& hard = hardened_run.cluster_result;
  const core::ClusterResult& cons = consecutive_run.cluster_result;
  const core::ClusterResult& bare = no_response_run.cluster_result;

  util::Table table({"variant", "surge tput", "commits", "false down",
                     "declared", "detect lat", "retries", "dead", "shed"});
  AddRow(&table, "hardened (phi+quorum, retry+shed)", hard);
  AddRow(&table, "consecutive-miss detector", cons);
  AddRow(&table, "no retry / no shed", bare);
  table.Print(std::cout);

  // Determinism: the hardened storm run twice with the decision audit
  // attached must produce byte-identical decision logs, and attaching the
  // audit + trace must not move a single commit (observation only).
  core::ExperimentSpec audited = LoadStormSpec();
  audited.decisions_path = decisions_csv;
  audited.trace_path = out_dir + "/fault_storm.trace.json";
  const core::SpecRunResult first = core::RunSpec(audited);
  const core::SpecRunResult second = core::RunSpec(audited);
  const uint64_t fingerprint = Fnv1a(DecisionsCsv(first));
  const bool bit_exact = DecisionsCsv(first) == DecisionsCsv(second);
  const bool audit_inert = first.cluster_result.commits == hard.commits;

  const bool fewer_false = hard.false_declarations < cons.false_declarations &&
                           cons.false_declarations > 0;
  const bool still_detects =
      hard.detection_latency_mean > 0.0 && hard.declared_down > 0;
  const bool response_wins = SurgeThroughput(hard) > SurgeThroughput(bare);
  const bool faults_ran = hard.faults_started == hard.faults_ended &&
                          hard.faults_started > 0 && hard.probes_lost > 0;

  std::printf(
      "\nverdict:\n"
      "  storm executed (windows=%llu, probes lost=%llu, delayed=%llu): %s\n"
      "  false down-declarations, phi+quorum vs consecutive: %llu < %llu: "
      "%s\n"
      "  real crash still detected (declared=%llu, latency=%.2fs): %s\n"
      "  surge commits, retry+shed vs bare: %.1f/s > %.1f/s: %s\n"
      "  run-to-run decisions bit-exact (fnv %llu): %s\n"
      "  audit+trace observation-only (commits %llu == %llu): %s\n"
      "  decisions.csv: %s\n",
      static_cast<unsigned long long>(hard.faults_started),
      static_cast<unsigned long long>(hard.probes_lost),
      static_cast<unsigned long long>(hard.probes_delayed),
      faults_ran ? "YES" : "NO",
      static_cast<unsigned long long>(hard.false_declarations),
      static_cast<unsigned long long>(cons.false_declarations),
      fewer_false ? "YES" : "NO",
      static_cast<unsigned long long>(hard.declared_down),
      hard.detection_latency_mean, still_detects ? "YES" : "NO",
      SurgeThroughput(hard), SurgeThroughput(bare),
      response_wins ? "YES" : "NO",
      static_cast<unsigned long long>(fingerprint), bit_exact ? "YES" : "NO",
      static_cast<unsigned long long>(first.cluster_result.commits),
      static_cast<unsigned long long>(hard.commits),
      audit_inert ? "YES" : "NO", decisions_csv.c_str());
  return faults_ran && fewer_false && still_detects && response_wins &&
                 bit_exact && audit_inert
             ? 0
             : 1;
}
