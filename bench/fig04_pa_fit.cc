// E4 — Figure 4: "Principle of the Parabola Approximation". Runs PA on the
// stationary system, then prints the fitted parabola next to the true
// (offline-measured) throughput curve so the quality of the quadratic
// approximation around the operating point is visible.

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "control/gate.h"
#include "control/monitor.h"
#include "control/parabola.h"
#include "db/system.h"
#include "sim/simulator.h"
#include "util/strformat.h"
#include "util/table.h"

int main() {
  using namespace alc;
  bench::PrintHeader("Figure 4: principle of the Parabola Approximation",
                     "P(n) = a0 + a1 n + a2 n^2 fitted by fading-memory RLS; "
                     "its maximum is the next load threshold");

  core::ScenarioConfig scenario = bench::PaperScenario();
  scenario.duration = 300.0;

  // Run the PA controller attached to the real system, but keep our own
  // mirror of it so we can read out the fitted coefficients afterwards.
  control::ParabolaApproximationController pa(scenario.control.pa);
  sim::Simulator simulator;
  db::TransactionSystem system(&simulator, scenario.system);
  system.SetWorkloadDynamics(scenario.dynamics);
  system.SetActiveTerminalsSchedule(scenario.active_terminals);
  control::AdmissionGate gate(&system, scenario.control.initial_limit);
  control::Monitor monitor(&simulator, &system,
                           scenario.control.measurement_interval);
  monitor.SetCallback([&](const control::Sample& sample) {
    gate.SetLimit(pa.Update(sample));
  });
  system.Start();
  monitor.Start();
  simulator.RunUntil(scenario.duration);

  double a0, a1, a2;
  pa.FittedCoefficients(&a0, &a1, &a2);
  std::printf("fitted: P(n) = %.2f + %.4f n + %.6f n^2  (a2 %s 0)\n", a0, a1,
              a2, a2 < 0 ? "<" : ">=");
  if (a2 < 0.0) {
    std::printf("vertex: n* = -a1/(2 a2) = %.0f\n\n", -a1 / (2.0 * a2));
  }

  // Compare the fit against the true curve near the operating region.
  core::OptimumFinder finder(scenario, bench::FastSearch());
  const core::OptimumResult optimum = finder.FindAt(0.0);
  util::Table table({"n", "measured T(n)", "parabola fit"});
  for (const auto& [n, t] : optimum.curve) {
    const double fit = a0 + a1 * n + a2 * n * n;
    table.AddRow({util::StrFormat("%.0f", n), util::StrFormat("%.1f", t),
                  util::StrFormat("%.1f", fit)});
  }
  table.Print(std::cout);
  std::printf("\nnote: the parabola is a *local* model around the operating "
              "point n~%.0f;\nits vertex (%.0f) approximates the true "
              "optimum (%.0f) without modelling the whole curve.\n",
              pa.bound(), a2 < 0 ? -a1 / (2 * a2) : 0.0, optimum.n_opt);
  return 0;
}
