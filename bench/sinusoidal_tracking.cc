// E10 — Section 9: "a sinusoidal variation modelling more smooth and
// gradual changes. Both algorithms were able to follow gradual changes."
// The workload mix swings sinusoidally; both controllers must modulate the
// bound in phase with the (inverted) write-intensity.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "core/report.h"
#include "util/strformat.h"
#include "util/table.h"

int main() {
  using namespace alc;
  bench::PrintHeader(
      "Section 9: tracking a sinusoidal workload variation",
      "both algorithms follow gradual changes");

  const double period = 300.0;
  auto make_scenario = [&](const char* controller) {
    core::ScenarioConfig scenario = bench::PaperScenario();
    scenario.duration = 900.0;
    scenario.warmup = 100.0;
    // Query fraction swings 0.30 +/- 0.35 -> optimum swings accordingly.
    scenario.dynamics.query_fraction =
        db::Schedule::Sinusoid(0.5, 0.35, period);
    scenario.control.name = controller;
    return scenario;
  };

  for (const char* controller :
       {"incremental-steps", "parabola-approximation"}) {
    core::ScenarioConfig scenario = make_scenario(controller);
    const core::ExperimentResult result = core::Experiment(scenario).Run();

    // Correlate the bound with the query fraction (which raises the
    // optimum): phase-locked tracking shows up as positive correlation.
    double sum_b = 0.0, sum_q = 0.0, sum_bq = 0.0, sum_b2 = 0.0, sum_q2 = 0.0;
    int count = 0;
    for (const core::TrajectoryPoint& point : result.trajectory) {
      if (point.time < scenario.warmup) continue;
      const double q = scenario.dynamics.query_fraction.Value(point.time);
      sum_b += point.bound;
      sum_q += q;
      sum_bq += point.bound * q;
      sum_b2 += point.bound * point.bound;
      sum_q2 += q * q;
      ++count;
    }
    const double cov = sum_bq / count - (sum_b / count) * (sum_q / count);
    const double var_b = sum_b2 / count - (sum_b / count) * (sum_b / count);
    const double var_q = sum_q2 / count - (sum_q / count) * (sum_q / count);
    const double corr = cov / std::sqrt(var_b * var_q);

    std::printf("\n%s\n", core::SummaryLine(
        controller, result).c_str());
    std::printf("  correlation(bound, query fraction) = %+.2f "
                "(positive = tracking the swing)\n", corr);

    // Print one period of the steady-state trajectory, coarsened.
    util::Table table({"time", "query frac", "bound n*", "throughput"});
    for (const core::TrajectoryPoint& point : result.trajectory) {
      if (point.time < 450.0 || point.time > 750.0) continue;
      if (std::fmod(point.time, 25.0) >= 1.0) continue;
      table.AddRow({util::StrFormat("%.0f", point.time),
                    util::StrFormat("%.2f", scenario.dynamics.query_fraction
                                                .Value(point.time)),
                    util::StrFormat("%.0f", point.bound),
                    util::StrFormat("%.1f", point.throughput)});
    }
    table.Print(std::cout);
  }
  return 0;
}
