// E11 — Section 1's two CC classes side by side:
//  * blocking (2PL): the mean number of blocked transactions grows
//    quadratically with the concurrency level [Tay et al. 1985], and active
//    transactions a = n - b eventually *decrease*;
//  * non-blocking (timestamp certification): data contention is resolved by
//    aborts/reruns, i.e. converted into resource contention — throughput
//    drops once resource saturation is reached.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "control/gate.h"
#include "db/system.h"
#include "sim/simulator.h"
#include "util/math.h"
#include "util/strformat.h"
#include "util/table.h"

int main() {
  using namespace alc;
  bench::PrintHeader(
      "Section 1: blocking (2PL) vs non-blocking (certification) thrashing",
      "2PL: blocked b(n) quadratic, active a = n - b peaks then falls; "
      "OCC: rerun work saturates the CPU");

  core::ScenarioConfig base = bench::PaperScenario();
  // A tighter database accentuates data contention for the lock manager.
  base.system.logical.db_size = 4000;
  base.system.logical.write_fraction = 0.4;

  const std::vector<double> loads = {25, 50, 100, 150, 200, 300, 400};

  util::Table table({"n", "2PL: T", "2PL: blocked b", "2PL: active a",
                     "OCC: T", "OCC: aborts/commit", "OCC: wasted CPU"});
  std::vector<double> ns, bs;
  for (double n : loads) {
    double t_2pl, blocked, t_occ, conflicts, wasted;
    {
      sim::Simulator simulator;
      db::SystemConfig config = base.system;
      config.cc = db::CcScheme::kTwoPhaseLocking;
      config.seed = 23;
      db::TransactionSystem system(&simulator, config);
      control::AdmissionGate gate(&system, n);
      system.Start();
      simulator.RunUntil(120.0);
      t_2pl = system.metrics().counters.commits / 120.0;
      blocked = system.metrics().blocked_track.AverageUntil(simulator.Now());
    }
    {
      sim::Simulator simulator;
      db::SystemConfig config = base.system;
      config.cc = db::CcScheme::kOptimisticCertification;
      config.seed = 23;
      db::TransactionSystem system(&simulator, config);
      control::AdmissionGate gate(&system, n);
      system.Start();
      simulator.RunUntil(120.0);
      const db::Counters& counters = system.metrics().counters;
      t_occ = counters.commits / 120.0;
      conflicts = counters.commits > 0
                      ? static_cast<double>(counters.total_aborts()) /
                            counters.commits
                      : 0.0;
      wasted = (counters.useful_cpu + counters.wasted_cpu) > 0
                   ? counters.wasted_cpu /
                         (counters.useful_cpu + counters.wasted_cpu)
                   : 0.0;
    }
    ns.push_back(n);
    bs.push_back(blocked);
    table.AddRow({util::StrFormat("%.0f", n), util::StrFormat("%.1f", t_2pl),
                  util::StrFormat("%.1f", blocked),
                  util::StrFormat("%.1f", n - blocked),
                  util::StrFormat("%.1f", t_occ),
                  util::StrFormat("%.2f", conflicts),
                  util::StrFormat("%.2f", wasted)});
  }
  table.Print(std::cout);

  // Tay's analysis applies before blocking saturates (b -> n - a_min, which
  // looks linear). Check super-linear growth by doubling ratios in the
  // pre-saturation range: quadratic b(n) gives b(2n)/b(n) ~ 4.
  std::printf("\nsuper-linearity of b(n) before saturation:\n");
  for (size_t i = 0; i + 1 < ns.size() && ns[i + 1] <= 150.0; ++i) {
    for (size_t j = i + 1; j < ns.size() && ns[j] <= 150.0; ++j) {
      if (ns[j] == 2.0 * ns[i] && bs[i] > 0.0) {
        std::printf("  b(%.0f)/b(%.0f) = %.1f (linear would be 2, quadratic "
                    "4)\n",
                    ns[j], ns[i], bs[j] / bs[i]);
      }
    }
  }
  std::printf("\nshape check: for 2PL, beyond the critical point adding "
              "transactions adds >1 blocked each (db(n)/dn > 1), so active "
              "a = n - b stops growing and then falls; at high n nearly the "
              "whole population is blocked.\n");
  return 0;
}
