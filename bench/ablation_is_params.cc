// E14 — Section 4.1: sensitivity of the Incremental Steps parameters. beta
// scales the step with the performance change, gamma pulls bound and load
// back together, delta is the drift dead band. Sweeps each around the
// default on the jump workload.

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "core/report.h"
#include "util/strformat.h"
#include "util/table.h"

namespace {

struct RowResult {
  double tracking_error;
  double throughput;
  double capture;
};

RowResult RunIs(const alc::core::ScenarioConfig& base,
                const std::vector<alc::core::OptimumRegime>& timeline,
                alc::control::IsConfig is) {
  alc::core::ScenarioConfig scenario = base;
  scenario.control.name = "incremental-steps";
  scenario.control.is = is;
  const alc::core::ExperimentResult result =
      alc::core::Experiment(scenario).Run();
  alc::core::TrackingOptions options;
  options.skip_initial = 100.0;
  const alc::core::TrackingStats stats =
      alc::core::EvaluateTracking(result.trajectory, timeline, options);
  return {stats.mean_abs_error, result.mean_throughput,
          stats.throughput_capture};
}

}  // namespace

int main() {
  using namespace alc;
  bench::PrintHeader(
      "Section 4.1: IS parameter sensitivity (beta, gamma, delta)",
      "the parameters must be tuned carefully (section 5)");

  core::ScenarioConfig base = bench::JumpScenario();
  base.duration = 700.0;
  core::OptimumFinder finder(base, bench::FastSearch());
  const auto timeline = finder.Timeline(700.0);
  const control::IsConfig defaults = base.control.is;

  {
    util::Table table({"beta", "mean |n*-opt|", "throughput", "capture"});
    for (double beta : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      control::IsConfig is = defaults;
      is.beta = beta;
      const RowResult row = RunIs(base, timeline, is);
      table.AddRow({util::StrFormat("%.2f", beta),
                    util::StrFormat("%.1f", row.tracking_error),
                    util::StrFormat("%.1f", row.throughput),
                    util::StrFormat("%.2f", row.capture)});
    }
    std::printf("beta sweep (gamma=%.0f, delta=%.0f):\n", defaults.gamma,
                defaults.delta);
    table.Print(std::cout);
  }
  {
    util::Table table({"gamma", "mean |n*-opt|", "throughput", "capture"});
    for (double gamma : {2.0, 5.0, 10.0, 20.0, 40.0}) {
      control::IsConfig is = defaults;
      is.gamma = gamma;
      const RowResult row = RunIs(base, timeline, is);
      table.AddRow({util::StrFormat("%.0f", gamma),
                    util::StrFormat("%.1f", row.tracking_error),
                    util::StrFormat("%.1f", row.throughput),
                    util::StrFormat("%.2f", row.capture)});
    }
    std::printf("\ngamma sweep (beta=%.1f, delta=%.0f):\n", defaults.beta,
                defaults.delta);
    table.Print(std::cout);
  }
  {
    util::Table table({"delta", "mean |n*-opt|", "throughput", "capture"});
    for (double delta : {5.0, 10.0, 25.0, 50.0, 100.0}) {
      control::IsConfig is = defaults;
      is.delta = delta;
      const RowResult row = RunIs(base, timeline, is);
      table.AddRow({util::StrFormat("%.0f", delta),
                    util::StrFormat("%.1f", row.tracking_error),
                    util::StrFormat("%.1f", row.throughput),
                    util::StrFormat("%.2f", row.capture)});
    }
    std::printf("\ndelta sweep (beta=%.1f, gamma=%.0f):\n", defaults.beta,
                defaults.gamma);
    table.Print(std::cout);
  }
  std::printf("\nshape check: very large beta overshoots (higher error); "
              "very small beta/gamma is sluggish after the jumps.\n");
  return 0;
}
