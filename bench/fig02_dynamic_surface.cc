// E2 — Figure 2: "Dynamic behavior of a thrashing system". The performance
// function P(n, t) is a time-varying mountain whose ridge the controller
// must track. This bench samples the surface on a coarse (time, n) grid for
// the jump scenario of figs. 13/14 and prints it as a matrix, making the
// ridge movement visible in numbers.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "core/experiment.h"
#include "util/strformat.h"
#include "util/table.h"

int main() {
  using namespace alc;
  bench::PrintHeader(
      "Figure 2: the time-varying performance surface P(n, t)",
      "the ridge (optimum) moves when the workload mix changes");

  core::ScenarioConfig scenario = bench::JumpScenario();
  const std::vector<double> loads = {50, 125, 195, 265, 330, 450, 600};
  // One column per regime of the jump schedule (the surface is piecewise
  // stationary, so sampling one t per regime captures it exactly).
  const std::vector<double> times = {0.0, 400.0, 700.0};

  std::vector<std::string> headers = {"load n \\ t"};
  for (double t : times) headers.push_back(util::StrFormat("t=%.0f", t));
  util::Table table(headers);

  std::vector<std::vector<double>> surface(loads.size());
  for (size_t row = 0; row < loads.size(); ++row) {
    std::vector<std::string> cells = {util::StrFormat("%.0f", loads[row])};
    for (double t : times) {
      const double throughput = core::StationaryThroughput(
          scenario, loads[row], t + 1e-6, 80.0, 20.0, 13);
      surface[row].push_back(throughput);
      cells.push_back(util::StrFormat("%.1f", throughput));
    }
    table.AddRow(cells);
  }
  table.Print(std::cout);

  for (size_t col = 0; col < times.size(); ++col) {
    size_t best = 0;
    for (size_t row = 1; row < loads.size(); ++row) {
      if (surface[row][col] > surface[best][col]) best = row;
    }
    std::printf("ridge at t=%.0f: n~%.0f (T=%.1f)\n", times[col], loads[best],
                surface[best][col]);
  }
  std::printf("\nshape check: the ridge position moves with the regime "
              "(t=400 regime is query-heavy: higher optimum).\n");
  return 0;
}
