// E17 — Section 6 (reconstructed; see DESIGN.md): choice of the performance
// measure the controller maximizes. The paper examined several indicators
// and concluded "the throughput T turned out to be the most significant
// indicator for overload situations". We drive PA with throughput, inverse
// response time, and effective CPU utilization, and compare both the
// distinctness of each measure's extremum and the resulting control.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "control/gate.h"
#include "core/report.h"
#include "db/system.h"
#include "sim/simulator.h"
#include "util/strformat.h"
#include "util/table.h"

int main() {
  using namespace alc;
  bench::PrintHeader(
      "Section 6: which performance index should the controller maximize?",
      "throughput has the most distinct extremum; it is the paper's choice");

  core::ScenarioConfig base = bench::PaperScenario();

  // Measure all three indices over the stationary load sweep.
  util::Table sweep({"n", "throughput", "1/resp", "eff. cpu util"});
  struct Point {
    double n, t, inv_r, eff;
  };
  std::vector<Point> points;
  for (double n : {50.0, 100.0, 150.0, 195.0, 250.0, 350.0, 500.0, 700.0}) {
    sim::Simulator simulator;
    db::SystemConfig config = base.system;
    config.seed = 31;
    db::TransactionSystem system(&simulator, config);
    control::AdmissionGate gate(&system, n);
    system.Start();
    simulator.RunUntil(120.0);
    const db::Counters& counters = system.metrics().counters;
    const double throughput = counters.commits / 120.0;
    const double response =
        counters.commits ? counters.response_time_sum / counters.commits : 0;
    const double useful_fraction =
        (counters.useful_cpu + counters.wasted_cpu) > 0
            ? counters.useful_cpu / (counters.useful_cpu + counters.wasted_cpu)
            : 1.0;
    const double eff = system.cpu().Utilization() * useful_fraction;
    points.push_back({n, throughput, response > 0 ? 1.0 / response : 0, eff});
    sweep.AddRow({util::StrFormat("%.0f", n),
                  util::StrFormat("%.1f", throughput),
                  util::StrFormat("%.2f", response > 0 ? 1.0 / response : 0),
                  util::StrFormat("%.3f", eff)});
  }
  sweep.Print(std::cout);

  // Distinctness of the extremum: contrast between the peak and the curve
  // edges (both the underloaded left end and the thrashing right end).
  auto contrast = [&](auto getter) {
    double peak = -1e18;
    for (const Point& point : points) peak = std::max(peak, getter(point));
    const double edge =
        std::max(getter(points.front()), getter(points.back()));
    return peak / std::max(edge, 1e-9);
  };
  std::printf("\npeak/edge contrast (higher = more distinct extremum): "
              "throughput %.2f, 1/resp %.2f, eff-util %.2f\n",
              contrast([](const Point& p) { return p.t; }),
              contrast([](const Point& p) { return p.inv_r; }),
              contrast([](const Point& p) { return p.eff; }));

  // Control quality with each index.
  util::Table control_table({"index", "throughput", "mean resp", "mean load"});
  const char* names[] = {"throughput", "1/response-time", "effective-cpu"};
  const control::PerformanceIndex indices[] = {
      control::PerformanceIndex::kThroughput,
      control::PerformanceIndex::kInverseResponseTime,
      control::PerformanceIndex::kEffectiveCpuUtilization};
  for (int i = 0; i < 3; ++i) {
    core::ScenarioConfig scenario = base;
    scenario.control.name = "parabola-approximation";
    scenario.control.pa.index = indices[i];
    const core::ExperimentResult result = core::Experiment(scenario).Run();
    control_table.AddRow({names[i],
                          util::StrFormat("%.1f", result.mean_throughput),
                          util::StrFormat("%.3f", result.mean_response),
                          util::StrFormat("%.0f", result.mean_active)});
  }
  std::printf("\nPA controller driven by each index:\n");
  control_table.Print(std::cout);
  std::printf("\nshape check: all three indices peak near the same load; "
              "what differs is controllability — the 1/R surface is flatter "
              "relative to its noise near the optimum, so the controller "
              "driven by it settles low and under-utilizes, while the "
              "throughput-driven controller performs best — the paper's "
              "section 6 conclusion.\n");
  return 0;
}
