// Related-work claim (section 2): "While these two proposals [Tay, Iyer]
// are limited to blocking CC algorithms, our approach is more generally
// applicable." The feedback controllers only see (load, performance) pairs,
// so the identical IS/PA code must also control the *blocking* (2PL)
// system. This bench swaps the CC scheme and repeats the stationary
// experiment of figure 12.

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "core/report.h"
#include "util/strformat.h"
#include "util/table.h"

int main() {
  using namespace alc;
  bench::PrintHeader(
      "Section 2: model independence — the same controllers on 2PL",
      "IS/PA are CC-agnostic; they find the (much lower) lock-thrashing "
      "optimum of the blocking system unchanged");

  core::ScenarioConfig base = bench::PaperScenario();
  base.system.cc = db::CcScheme::kTwoPhaseLocking;
  // Lock thrashing has a far lower optimum; give the hill climbers
  // commensurate step sizes and starting points.
  base.system.logical.db_size = 4000;
  base.system.logical.write_fraction = 0.4;
  // Lock thrashing caps throughput near 60/s; stretch the measurement
  // interval so each sample still contains a few hundred departures
  // (section 5's sizing rule).
  base.control.measurement_interval = 4.0;
  base.duration = 600.0;
  base.control.initial_limit = 15.0;
  base.control.is.initial_bound = 15.0;
  base.control.is.beta = 0.5;
  base.control.is.gamma = 4.0;
  base.control.is.delta = 10.0;
  base.control.is.min_bound = 2.0;
  base.control.pa.initial_bound = 15.0;
  base.control.pa.dither = 6.0;
  base.control.pa.min_bound = 2.0;
  // The admissible range also scales the PA regressor; matching it to the
  // blocking system's much smaller operating range conditions the fit, and
  // the sharply peaked lock-thrashing curve rewards faster forgetting.
  base.control.pa.max_bound = 300.0;
  base.control.pa.forgetting = 0.90;
  base.control.is.max_bound = 300.0;

  core::OptimumSearchConfig search = bench::FastSearch();
  search.n_lo = 4.0;
  search.n_hi = 300.0;
  core::OptimumFinder finder(base, search);
  const core::OptimumResult optimum = finder.FindAt(0.0);
  std::printf("2PL true optimum: n_opt=%.0f, peak=%.1f/s (curve: ", optimum.n_opt,
              optimum.peak_throughput);
  int printed = 0;
  for (const auto& [n, t] : optimum.curve) {
    if (printed++ % 3 == 0) std::printf("(%.0f,%.0f) ", n, t);
  }
  std::printf(")\n\n");

  util::Table table({"controller", "throughput", "T/T_peak", "mean load",
                     "deadlock aborts"});
  for (const char* controller :
       {"none", "incremental-steps", "parabola-approximation",
        "golden-section"}) {
    core::ScenarioConfig scenario = base;
    scenario.control.name = controller;
    scenario.control.gs.min_bound = 2.0;
    scenario.control.gs.max_bound = 300.0;
    scenario.control.gs.min_bracket = 15.0;
    const core::ExperimentResult result = core::Experiment(scenario).Run();
    table.AddRow(
        {std::string(controller),
         util::StrFormat("%.1f", result.mean_throughput),
         util::StrFormat("%.2f",
                         result.mean_throughput / optimum.peak_throughput),
         util::StrFormat("%.0f", result.mean_active),
         util::StrFormat("%llu",
                         static_cast<unsigned long long>(
                             result.final_counters.aborts_deadlock))});
  }
  table.Print(std::cout);
  std::printf("\nshape check: without control the blocking system collapses "
              "(nearly all transactions blocked);\nthe unchanged IS/PA find "
              "the lock-thrashing optimum — no Tay/Iyer-style model of the "
              "CC scheme needed.\n");
  return 0;
}
