// Extension — open vs closed arrivals. The paper's closed model self-caps
// the load at the terminal population; an open (Poisson) system has no such
// cap, so overload without control is strictly worse: the admitted load
// keeps climbing into the thrashing region while the queue grows without
// bound. Adaptive control turns sustained overload into bounded-load
// operation at peak throughput (with the excess waiting at the gate).

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "control/gate.h"
#include "control/monitor.h"
#include "core/scenario.h"
#include "db/system.h"
#include "sim/simulator.h"
#include "util/strformat.h"
#include "util/table.h"

namespace {

struct OpenResult {
  double throughput;
  double final_active;
  double final_queue;
};

OpenResult RunOpen(double rate, bool adaptive, double duration) {
  using namespace alc;
  core::ScenarioConfig scenario = bench::PaperScenario();
  scenario.system.arrivals = db::ArrivalMode::kOpen;
  scenario.system.open_arrival_rate = rate;
  scenario.control.name = adaptive ? "parabola-approximation" : "none";
  scenario.duration = duration;
  scenario.warmup = 30.0;
  core::Experiment experiment(scenario);
  const core::ExperimentResult result = experiment.Run();
  const core::TrajectoryPoint& last = result.trajectory.back();
  return {result.mean_throughput, last.load, last.gate_queue};
}

}  // namespace

int main() {
  using namespace alc;
  bench::PrintHeader(
      "Extension: open (Poisson) arrivals vs the paper's closed model",
      "without the closed model's self-capping population, overload drives "
      "the load arbitrarily deep into thrashing unless the gate intervenes");

  // The stationary peak of the default workload is ~192/s at n~195.
  util::Table table({"arrival rate", "control", "T (commits/s)",
                     "final load n", "final gate queue"});
  for (double rate : {120.0, 180.0, 240.0}) {
    for (bool adaptive : {false, true}) {
      const OpenResult r = RunOpen(rate, adaptive, 240.0);
      table.AddRow({util::StrFormat("%.0f/s", rate),
                    adaptive ? "parabola" : "none",
                    util::StrFormat("%.1f", r.throughput),
                    util::StrFormat("%.0f", r.final_active),
                    util::StrFormat("%.0f", r.final_queue)});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nshape checks:\n"
      "  rate 120 << peak: both modes keep up (T ~ rate), load stays low.\n"
      "  rate 180 ~ peak: the controller's probing costs a few percent and "
      "queues some work — the\n  insurance premium for overload protection.\n"
      "  rate 240 > peak: uncontrolled load grows far past n_opt~195 and "
      "throughput sinks below what the\n  controlled system sustains; the "
      "controlled system pins the load near n_opt and leaves the excess\n"
      "  in the gate queue (which grows — no controller can commit more "
      "than the peak rate).\n");
  return 0;
}
