// Extension — open vs closed arrivals, on the workload-source subsystem.
// The paper's closed model self-caps the load at the terminal population;
// an open (Poisson) system has no such cap, so overload without control is
// strictly worse: the admitted load keeps climbing into the thrashing
// region while the queue grows without bound. Adaptive control turns
// sustained overload into bounded-load operation at peak throughput (with
// the excess waiting at the gate).
//
// Both arrival models are now [workload] sources swept over one spec: the
// "open" source is the Poisson stream, the "closed" source is the paper's
// terminal population (850 forever-cycling sessions, 1 s exponential think
// time) expressed as session loops. The pre-subsystem version of this
// bench hand-rolled the open driver through db::ArrivalMode::kOpen inside
// a single-node Experiment; the numbers here go through the cluster
// front-end instead (router + per-node gate), so the variate sequences —
// and therefore the third digit of each throughput — differ from that
// version's output, while every shape conclusion is unchanged:
// sub-peak rates keep up in both modes, overload without control sinks
// throughput, and overload with control holds the peak.
//
//   $ ./build/bench/open_vs_closed

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/cluster_experiment.h"
#include "core/spec.h"
#include "core/sweep.h"
#include "util/strformat.h"
#include "util/table.h"

namespace {

using namespace alc;

/// The paper-scale node behind a 1-node cluster front-end, so the
/// [workload] sources drive it. A 1-node fleet keeps the routing layer
/// trivial: every arrival goes to the node, the gate does the work.
core::ExperimentSpec FrontEndPaperSpec() {
  core::ExperimentSpec spec = bench::PaperSpec();
  spec.name = "open-vs-closed";
  spec.cluster = true;
  spec.duration = 240.0;
  spec.warmup = 30.0;
  // The closed source reproduces the paper's terminal model: the default
  // physical config's 850 terminals with 1 s exponential think time.
  spec.workload.sessions = db::PhysicalConfig{}.num_terminals;
  spec.workload.think_time = workload::Distribution::Exponential(
      db::PhysicalConfig{}.think_time_mean);
  return spec;
}

struct Row {
  std::string mode;
  std::string control;
  double throughput = 0.0;
  double final_load = 0.0;
  double final_queue = 0.0;
};

Row MakeRow(const core::SweepPointResult& point) {
  Row row;
  const core::ClusterResult& result = point.result.cluster_result;
  for (const auto& [key, value] : point.assignment) {
    if (key == "workload.source") row.mode = value;
    if (key == "arrival_rate") row.mode += " " + value;
    if (key == "node.control.controller") {
      row.control = value == "none" ? "none" : "parabola";
    }
  }
  row.throughput = result.total_throughput;
  if (!result.aggregate.empty()) {
    const core::TrajectoryPoint& last = result.aggregate.back();
    row.final_load = last.load;
    row.final_queue = last.gate_queue;
  }
  return row;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension: open (Poisson) arrivals vs the paper's closed model",
      "without the closed model's self-capping population, overload drives "
      "the load arbitrarily deep into thrashing unless the gate intervenes");

  // The stationary peak of the default workload is ~192/s at n~195. One
  // sweep per source: the open stream across sub-peak/peak/overload rates,
  // the closed terminal population as the self-capping reference.
  core::SweepRunner open_runner(
      FrontEndPaperSpec(),
      {{"workload.source", {"open"}},
       {"arrival_rate", {"constant(120)", "constant(180)", "constant(240)"}},
       {"node.control.controller", {"none", "parabola-approximation"}}});
  const std::vector<core::SweepPointResult> open_results =
      open_runner.Run(bench::SweepThreads(open_runner.num_points()));

  core::SweepRunner closed_runner(
      FrontEndPaperSpec(),
      {{"workload.source", {"closed"}},
       {"node.control.controller", {"none", "parabola-approximation"}}});
  const std::vector<core::SweepPointResult> closed_results =
      closed_runner.Run(bench::SweepThreads(closed_runner.num_points()));

  util::Table table({"arrivals", "control", "T (commits/s)", "final load n",
                     "final gate queue"});
  std::vector<Row> rows;
  for (const core::SweepPointResult& point : open_results) {
    rows.push_back(MakeRow(point));
  }
  for (const core::SweepPointResult& point : closed_results) {
    rows.push_back(MakeRow(point));
  }
  for (const Row& row : rows) {
    table.AddRow({row.mode, row.control,
                  util::StrFormat("%.1f", row.throughput),
                  util::StrFormat("%.0f", row.final_load),
                  util::StrFormat("%.0f", row.final_queue)});
  }
  table.Print(std::cout);

  std::printf(
      "\nshape checks:\n"
      "  rate 120 << peak: both modes keep up (T ~ rate), load stays low.\n"
      "  rate 180 ~ peak: the controller's probing costs a few percent and "
      "queues some work — the\n  insurance premium for overload protection.\n"
      "  rate 240 > peak: uncontrolled load grows far past n_opt~195 and "
      "throughput sinks below what the\n  controlled system sustains; the "
      "controlled system pins the load near n_opt and leaves the excess\n"
      "  in the gate queue (which grows — no controller can commit more "
      "than the peak rate).\n"
      "  closed (850 terminals): the population caps the load at 850 — "
      "bounded, unlike open overload,\n  but still past the knee: the "
      "uncontrolled system sits in thrashing (the paper's core claim)\n"
      "  while the gate holds n near the optimum. Expressed as session "
      "loops over the same source\n  interface as the open stream.\n");
  return 0;
}
