// E13 — Section 5: the measurement-interval tradeoff. Short intervals react
// fast but see noise (controller jitter); long intervals are stable but
// sluggish after a jump. Also exercises the IntervalAdvisor's sizing rule
// ("rather hundreds of departures than some tens") and the outer tuning
// loop.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "control/interval_advisor.h"
#include "core/report.h"
#include "util/strformat.h"
#include "util/table.h"

int main() {
  using namespace alc;
  bench::PrintHeader(
      "Section 5: measurement interval length vs stability/responsiveness",
      "the interval should be just long enough to filter stochastic noise");

  core::ScenarioConfig base = bench::JumpScenario();
  base.duration = 700.0;  // one jump at 333, second regime until 666

  core::OptimumFinder finder(base, bench::FastSearch());
  const auto timeline = finder.Timeline(700.0);

  util::Table table({"interval (s)", "departures/interval", "mean |n*-opt|",
                     "bound jitter", "recovery after jump", "throughput"});
  for (double interval : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    core::ScenarioConfig scenario = base;
    scenario.control.name = "parabola-approximation";
    scenario.control.measurement_interval = interval;
    const core::ExperimentResult result = core::Experiment(scenario).Run();

    core::TrackingOptions options;
    options.skip_initial = 100.0;
    const core::TrackingStats stats =
        core::EvaluateTracking(result.trajectory, timeline, options);

    // Jitter: mean absolute step of the bound in steady state, beyond the
    // enforced dither.
    double jitter = 0.0;
    int jitter_n = 0;
    for (size_t i = 1; i < result.trajectory.size(); ++i) {
      const auto& prev = result.trajectory[i - 1];
      const auto& cur = result.trajectory[i];
      if (cur.time < 150.0 || cur.time > 330.0) continue;
      jitter += std::fabs(cur.bound - prev.bound);
      ++jitter_n;
    }
    const double recovery =
        stats.recovery_times.empty() ? -1.0 : stats.recovery_times[0];
    table.AddRow(
        {util::StrFormat("%.2f", interval),
         util::StrFormat("%.0f", result.mean_throughput * interval),
         util::StrFormat("%.1f", stats.mean_abs_error),
         util::StrFormat("%.1f", jitter_n ? jitter / jitter_n : 0.0),
         recovery < 0 ? std::string("none") : util::StrFormat("%.0f s", recovery),
         util::StrFormat("%.1f", result.mean_throughput)});
  }
  table.Print(std::cout);

  control::IntervalAdvisor advisor(1.0, 0.10, 0.95);
  std::printf("\nadvisor: cv=1, eps=10%%, conf=95%% -> %.0f departures "
              "(~%.1f s at the default peak) — 'hundreds rather than tens'\n",
              advisor.RequiredDepartures(),
              advisor.RecommendedInterval(190.0));
  std::printf("note: intervals near the transaction response time (~0.5-1 s "
              "here) are a resonance pocket —\nthe measured load lags the "
              "commanded dither by about half a cycle, so the fit sees "
              "phase-shifted pairs.\nIntervals must be either well below "
              "(with the excitation guard) or, better, above that scale.\n");

  // Outer tuning loop: starts from a deliberately bad interval.
  core::ScenarioConfig tuned = base;
  tuned.control.name = "parabola-approximation";
  tuned.control.measurement_interval = 0.25;
  tuned.control.outer_tuner = true;
  const core::ExperimentResult tuned_result = core::Experiment(tuned).Run();
  double last_gap = 0.0;
  if (tuned_result.trajectory.size() >= 2) {
    const auto& trajectory = tuned_result.trajectory;
    last_gap = trajectory.back().time - trajectory[trajectory.size() - 2].time;
  }
  std::printf("\nouter tuner: started at 0.25 s, converged to ~%.2f s "
              "intervals; throughput %.1f/s\n",
              last_gap, tuned_result.mean_throughput);
  return 0;
}
