// Cluster-level displacement under node failure: a 4-node JSQ cluster
// takes a flash crowd (900/s against ~600/s fleet capacity during
// [40s, 70s)), and node 0 crashes at t=60 — mid-crowd, with a deep
// admission queue — then rejoins with a fresh gate + controller at t=110.
//
// The sweep compares the crash-without-retraction baseline (queued work on
// the dead node is lost, in-flight work dies with it) against cluster-level
// displacement (retraction = true: the front-end retracts node 0's queued
// admissions, re-routes them through JSQ over the surviving membership, and
// retries the killed in-flight requests elsewhere).
//
// Claim under test: displacement + rejoin recovers post-failure throughput
// — the retained backlog finishes on the survivors, so committed
// throughput over [60s, end] strictly beats the baseline that dropped it.
//
// The same configuration is checked in as specs/node_failover.spec (pinned
// bit-exactly to this bench by tests/lifecycle_test.cc):
//
//   $ ./build/bench/node_failover
//   $ ./build/tools/alc_run specs/node_failover.spec

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "cluster/lifecycle.h"
#include "core/cluster_experiment.h"
#include "core/cluster_scenario.h"
#include "core/spec.h"
#include "core/sweep.h"
#include "util/strformat.h"
#include "util/table.h"

namespace {

using namespace alc;

constexpr int kNumNodes = 4;
constexpr double kCrashTime = 60.0;
constexpr double kRejoinTime = 110.0;

/// Downscaled node (4 CPUs, 600-granule DB), same calibration as
/// bench/cluster_routing so the numbers are comparable.
core::ClusterNodeScenario BenchNode(uint64_t seed) {
  core::ClusterNodeScenario node;
  node.system.physical.num_cpus = 4;
  node.system.physical.cpu_init_mean = 0.001;
  node.system.physical.cpu_access_mean = 0.001;
  node.system.physical.cpu_commit_mean = 0.001;
  node.system.physical.cpu_write_commit_mean = 0.004;
  node.system.physical.io_time = 0.008;
  node.system.physical.restart_delay_mean = 0.02;
  node.system.logical.db_size = 600;
  node.system.logical.accesses_per_txn = 8;
  node.system.logical.query_fraction = 0.3;
  node.system.logical.write_fraction = 0.4;
  node.system.seed = seed;
  node.dynamics = db::WorkloadDynamics::FromConfig(node.system.logical);
  node.control.measurement_interval = 0.5;
  node.control.initial_limit = 20.0;
  node.control.pa.initial_bound = 20.0;
  node.control.pa.min_bound = 2.0;
  node.control.pa.max_bound = 200.0;
  node.control.pa.dither = 5.0;
  return node;
}

/// The spec-file scenario, built through the struct API: flash crowd, node
/// 0 crashing mid-crowd and rejoining fresh.
core::ClusterScenarioConfig FailoverCluster(uint64_t seed) {
  core::ClusterScenarioConfig scenario;
  for (int i = 0; i < kNumNodes; ++i) {
    scenario.nodes.push_back(BenchNode(core::DecorrelatedNodeSeed(seed, i)));
  }
  scenario.seed = seed;
  scenario.duration = 200.0;
  scenario.warmup = 20.0;
  scenario.arrival_rate = core::FlashCrowdSchedule(320.0, 900.0, 40.0, 70.0);
  scenario.routing_name = "join-shortest-queue";
  cluster::AvailabilitySchedule availability;
  std::string error;
  if (!cluster::AvailabilitySchedule::Make(
          cluster::NodeState::kUp,
          {{kCrashTime, cluster::NodeState::kDown},
           {kRejoinTime, cluster::NodeState::kUp}},
          &availability, &error)) {
    std::fprintf(stderr, "availability: %s\n", error.c_str());
    std::abort();
  }
  scenario.nodes[0].availability = availability;
  scenario.nodes[0].rejoin = cluster::RejoinPolicy::kFresh;
  scenario.retraction.enabled = true;
  return scenario;
}

/// Mean aggregate throughput over ticks after `from` (commits/s).
double ThroughputAfter(const core::ClusterResult& result, double from) {
  double sum = 0.0;
  int count = 0;
  for (const core::TrajectoryPoint& point : result.aggregate) {
    if (point.time <= from) continue;
    sum += point.throughput;
    ++count;
  }
  return count > 0 ? sum / count : 0.0;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Node failure + cluster-level displacement",
      "retracting a crashed node's queued admissions and re-routing them "
      "through the live membership recovers post-failure throughput");

  core::SweepRunner runner(core::SpecFromCluster(FailoverCluster(42)),
                           {{"retraction", {"false", "true"}}});
  const std::vector<core::SweepPointResult> results =
      runner.Run(bench::SweepThreads(runner.num_points()));

  util::Table table({"mode", "throughput", "post-failure", "commits",
                     "crash kills", "retracted", "lost"});
  core::ClusterResult baseline, displaced;
  for (const core::SweepPointResult& point : results) {
    const bool retraction = point.assignment[0].second == "true";
    const core::ClusterResult& result = point.result.cluster_result;
    (retraction ? displaced : baseline) = result;
    table.AddRow(
        {retraction ? "displacement + rejoin" : "crash, no retraction",
         util::StrFormat("%.1f/s", result.total_throughput),
         util::StrFormat("%.1f/s", ThroughputAfter(result, kCrashTime)),
         util::StrFormat("%llu",
                         static_cast<unsigned long long>(result.commits)),
         util::StrFormat("%llu",
                         static_cast<unsigned long long>(result.crash_kills)),
         util::StrFormat("%llu",
                         static_cast<unsigned long long>(result.retracted)),
         util::StrFormat("%llu",
                         static_cast<unsigned long long>(result.lost))});
  }
  table.Print(std::cout);

  const double baseline_post = ThroughputAfter(baseline, kCrashTime);
  const double displaced_post = ThroughputAfter(displaced, kCrashTime);
  std::printf(
      "\nverdict:\n"
      "  post-failure throughput, displacement + rejoin : %.1f commits/s\n"
      "  post-failure throughput, crash baseline        : %.1f commits/s\n"
      "  displacement recovers the backlog: %s\n",
      displaced_post, baseline_post,
      displaced_post > baseline_post ? "YES" : "NO");
  std::printf(
      "\nThe crash lands mid-crowd, when node 0 holds a deep admission\n"
      "queue. Displacement moves that queue through the router onto the\n"
      "survivors (and retries the killed in-flight work); the baseline\n"
      "drops it. Both runs route around the dead node and re-admit it at\n"
      "t=%.0fs — the difference after the crash is exactly the retained\n"
      "work.\n",
      kRejoinTime);
  return displaced_post > baseline_post ? 0 : 1;
}
