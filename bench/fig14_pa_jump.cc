// E9 — Figure 14: "Trajectory of the Parabola Approach when the position of
// the optimum changes abruptly". PA responds a little more slowly than IS
// but tracks the optimum more accurately and reliably; the visible
// oscillations of n* are the excitation the algorithm enforces (section
// 4.2/5.2).

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "core/report.h"
#include "util/strformat.h"

int main() {
  using namespace alc;
  bench::PrintHeader(
      "Figure 14: Parabola Approximation trajectory under abrupt jumps",
      "PA responds slower than IS but tracks more accurately and reliably");

  core::ScenarioConfig scenario = bench::JumpScenario();
  scenario.control.name = "parabola-approximation";

  std::printf("computing true optimum per regime (offline sweeps)...\n");
  core::OptimumFinder finder(scenario, bench::FastSearch());
  const auto timeline = finder.Timeline(scenario.duration);
  for (const core::OptimumRegime& regime : timeline) {
    std::printf("  regime from t=%4.0f: n_opt=%4.0f peak=%7.1f/s\n",
                regime.start_time, regime.n_opt, regime.peak_throughput);
  }

  const core::ExperimentResult result = core::Experiment(scenario).Run();
  std::printf("\ntrajectory (every 25th interval):\n");
  core::PrintTrajectory(std::cout, result.trajectory, timeline, 25);

  core::TrackingOptions options;
  options.skip_initial = 100.0;
  const core::TrackingStats stats =
      core::EvaluateTracking(result.trajectory, timeline, options);
  std::printf("\ntracking: mean |n*-n_opt| = %.1f (%.0f%% relative), "
              "throughput within 15%% of peak %.0f%% of the time\n",
              stats.mean_abs_error, 100.0 * stats.mean_rel_error,
              100.0 * stats.throughput_capture);
  for (size_t i = 0; i < stats.recovery_times.size(); ++i) {
    std::printf("  recovery after jump %zu: %s\n", i + 1,
                stats.recovery_times[i] < 0.0
                    ? "did not settle within the regime"
                    : util::StrFormat("%.0f s", stats.recovery_times[i])
                          .c_str());
  }

  // Head-to-head with IS on the identical workload (the paper's central
  // comparison: "PA outperformed IS in all cases examined").
  core::ScenarioConfig is_scenario = bench::JumpScenario();
  is_scenario.control.name = "incremental-steps";
  const core::ExperimentResult is_result =
      core::Experiment(is_scenario).Run();
  const core::TrackingStats is_stats =
      core::EvaluateTracking(is_result.trajectory, timeline, options);
  std::printf("\nhead-to-head on the identical workload:\n");
  std::printf("  %s\n", core::SummaryLine("parabola-approximation", result).c_str());
  std::printf("  %s\n",
              core::SummaryLine("incremental-steps", is_result).c_str());
  std::printf("  tracking error: PA %.1f vs IS %.1f (mean |n*-n_opt|)\n",
              stats.mean_abs_error, is_stats.mean_abs_error);
  return 0;
}
