// E1 — Figure 1: "Typical shape of the throughput function with thrashing".
// Reproduces the three phases: (I) underload, near-linear growth; (II)
// saturation, flattening; (III) overload, the drop beyond the optimum.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "util/strformat.h"
#include "util/table.h"

int main() {
  using namespace alc;
  bench::PrintHeader(
      "Figure 1: throughput vs. load with thrashing (three phases)",
      "throughput rises ~linearly, flattens at saturation, then drops");

  core::ScenarioConfig base = bench::PaperScenario();
  const std::vector<double> loads = {10,  25,  50,  75,  100, 150, 195,
                                     250, 300, 400, 500, 600, 750};
  util::Table table({"load n", "throughput", "phase"});
  std::vector<std::pair<double, double>> curve;
  for (double n : loads) {
    const double throughput =
        core::StationaryThroughput(base, n, 0.0, 120.0, 30.0, 7);
    curve.emplace_back(n, throughput);
  }
  double peak_t = 0.0, peak_n = 0.0;
  for (const auto& [n, t] : curve) {
    if (t > peak_t) {
      peak_t = t;
      peak_n = n;
    }
  }
  for (const auto& [n, t] : curve) {
    const char* phase = n < 0.55 * peak_n          ? "I (underload)"
                        : (n <= 1.35 * peak_n)     ? "II (saturation)"
                                                   : "III (overload)";
    table.AddRow({util::StrFormat("%.0f", n), util::StrFormat("%.1f", t),
                  phase});
  }
  table.Print(std::cout);

  const double first = curve.front().second;
  const double second = curve[1].second;
  const double last = curve.back().second;
  std::printf("\npeak: T=%.1f at n=%.0f\n", peak_t, peak_n);
  std::printf("shape checks:\n");
  std::printf("  phase I near-linear: T(25)/T(10) = %.2f (expect ~2.5)\n",
              second / first);
  std::printf("  phase III drop: T(750)/T(peak) = %.2f (expect << 1)\n",
              last / peak_t);
  return 0;
}
