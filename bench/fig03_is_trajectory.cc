// E3 — Figure 3: "Example trajectory of the Method of Incremental Steps".
// Under a stationary workload, IS tracks the ridge in zig-zag fashion: the
// bound oscillates around the optimum, reversing whenever performance gets
// worse.

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "core/report.h"

int main() {
  using namespace alc;
  bench::PrintHeader("Figure 3: zig-zag trajectory of Incremental Steps",
                     "IS climbs from a cold start and oscillates about the "
                     "ridge of the throughput mountain");

  core::ScenarioConfig scenario = bench::PaperScenario();
  scenario.control.name = "incremental-steps";
  scenario.control.is.initial_bound = 30.0;  // cold start well below n_opt
  scenario.duration = 300.0;

  core::OptimumFinder finder(scenario, bench::FastSearch());
  const core::OptimumResult optimum = finder.FindAt(0.0);
  std::printf("true optimum (offline): n_opt=%.0f, peak=%.1f/s\n\n",
              optimum.n_opt, optimum.peak_throughput);

  const core::ExperimentResult result = core::Experiment(scenario).Run();
  const std::vector<core::OptimumRegime> timeline = {
      {0.0, optimum.n_opt, optimum.peak_throughput}};
  core::PrintTrajectory(std::cout, result.trajectory, timeline, 10);

  // Quantify the zig-zag: direction reversals of the bound series.
  int reversals = 0;
  double prev_delta = 0.0;
  for (size_t i = 1; i < result.trajectory.size(); ++i) {
    const double delta =
        result.trajectory[i].bound - result.trajectory[i - 1].bound;
    if (delta * prev_delta < 0.0) ++reversals;
    if (delta != 0.0) prev_delta = delta;
  }
  std::printf("\nzig-zag: %d direction reversals over %zu intervals\n",
              reversals, result.trajectory.size());
  std::printf("%s\n", core::SummaryLine("incremental-steps", result).c_str());
  return 0;
}
