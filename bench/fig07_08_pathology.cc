// E6 — Figures 7/8: situations where the Parabola Approximation finds an
// upward-opening parabola (a2 >= 0) and must recover:
//   fig. 7 — the true performance function has a broad flat hump and the
//            sampled measurements suggest a convex course;
//   fig. 8 — the function changed shape abruptly and the current bound is
//            deep in the thrashing region, where the curve is convex.
// Compares the recovery policies on both synthetic pathologies.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "control/parabola.h"
#include "sim/random.h"
#include "util/strformat.h"
#include "util/table.h"

namespace {

using alc::control::PaConfig;
using alc::control::PaRecoveryPolicy;
using alc::control::ParabolaApproximationController;
using alc::control::Sample;

Sample MakeSample(double load, double perf, double time) {
  Sample sample;
  sample.time = time;
  sample.interval = 1.0;
  sample.mean_active = load;
  sample.throughput = perf;
  sample.commits = static_cast<long long>(perf);
  return sample;
}

const char* PolicyName(PaRecoveryPolicy policy) {
  switch (policy) {
    case PaRecoveryPolicy::kHold: return "hold";
    case PaRecoveryPolicy::kGradient: return "gradient";
    case PaRecoveryPolicy::kContract: return "contract";
    case PaRecoveryPolicy::kReset: return "reset";
  }
  return "?";
}

// Fig. 7 surface: broad flat hump around 300 with slightly convex shoulders.
double FlatHump(double n) {
  const double plateau = 200.0 / (1.0 + std::exp(-(n - 80.0) / 30.0));
  return plateau - 0.00015 * (n - 300.0) * (n - 300.0) * (n > 300.0 ? 1 : 0) * (n - 300.0);
}

// Fig. 8 surface after the abrupt change: the optimum collapsed to 60 and
// everything beyond ~150 is convex decline.
double Collapsed(double n) {
  return 120.0 * n / 60.0 * std::exp(1.0 - n / 60.0);
}

}  // namespace

int main() {
  using namespace alc;
  bench::PrintHeader(
      "Figures 7/8: upward-opening parabola pathologies and recovery",
      "a2 >= 0 makes the estimate useless; recovery policies must restore "
      "tracking");

  sim::RandomStream rng(17);

  // --- Fig. 7: flat hump. Count how often each policy is in recovery and
  // where it ends up.
  std::printf("fig. 7 scenario (broad flat hump, plateau 150..450):\n");
  util::Table hump({"policy", "recovery ticks", "final bound",
                    "final throughput"});
  for (PaRecoveryPolicy policy :
       {PaRecoveryPolicy::kHold, PaRecoveryPolicy::kGradient,
        PaRecoveryPolicy::kContract, PaRecoveryPolicy::kReset}) {
    PaConfig config = bench::PaperScenario().control.pa;
    config.recovery = policy;
    config.initial_bound = 150.0;
    ParabolaApproximationController pa(config);
    double bound = config.initial_bound;
    int recovery_ticks = 0;
    for (int t = 0; t < 300; ++t) {
      const double load = bound;
      const double perf = FlatHump(load) + rng.NextNormal(0.0, 3.0);
      bound = pa.Update(MakeSample(load, perf, t));
      if (pa.in_recovery()) ++recovery_ticks;
    }
    hump.AddRow({PolicyName(policy), util::StrFormat("%d", recovery_ticks),
                 util::StrFormat("%.0f", bound),
                 util::StrFormat("%.1f", FlatHump(bound))});
  }
  hump.Print(std::cout);

  // --- Fig. 8: abrupt shape change while the controller sits at a high
  // bound. The bound starts deep in the (new) thrashing region.
  std::printf("\nfig. 8 scenario (shape collapses, old bound deep in "
              "thrashing region, new n_opt=60):\n");
  util::Table collapse({"policy", "bound after 50", "bound after 200",
                        "final |n*-60|"});
  for (PaRecoveryPolicy policy :
       {PaRecoveryPolicy::kHold, PaRecoveryPolicy::kGradient,
        PaRecoveryPolicy::kContract, PaRecoveryPolicy::kReset}) {
    PaConfig config = bench::PaperScenario().control.pa;
    config.recovery = policy;
    config.initial_bound = 150.0;
    ParabolaApproximationController pa(config);
    double bound = config.initial_bound;
    // Converge on a healthy surface with optimum at 300 first.
    for (int t = 0; t < 150; ++t) {
      const double load = bound;
      const double perf = 250.0 - 0.002 * (load - 300.0) * (load - 300.0) +
                          rng.NextNormal(0.0, 3.0);
      bound = pa.Update(MakeSample(load, perf, t));
    }
    // Abrupt collapse.
    double at_50 = 0.0, at_200 = 0.0;
    for (int t = 0; t < 200; ++t) {
      const double load = bound;
      const double perf = Collapsed(load) + rng.NextNormal(0.0, 2.0);
      bound = pa.Update(MakeSample(load, perf, 150 + t));
      if (t == 49) at_50 = bound;
      if (t == 199) at_200 = bound;
    }
    collapse.AddRow({PolicyName(policy), util::StrFormat("%.0f", at_50),
                     util::StrFormat("%.0f", at_200),
                     util::StrFormat("%.0f", std::fabs(at_200 - 60.0))});
  }
  collapse.Print(std::cout);
  std::printf("\nshape check: every policy must leave the thrashing region "
              "(bound after 200 << 150); gradient/contract should approach "
              "n_opt=60.\n");
  return 0;
}
