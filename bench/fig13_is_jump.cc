// E8 — Figure 13: "Trajectory of the Incremental Steps when the position of
// the optimum changes abruptly". The broken line is the true optimum n_opt
// (computed offline by stationary sweeps per regime); the solid line is the
// controller's threshold n*.

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "core/report.h"
#include "util/strformat.h"

int main() {
  using namespace alc;
  bench::PrintHeader(
      "Figure 13: Incremental Steps trajectory under abrupt optimum jumps",
      "IS reacts quickly but adjusts to the new situation with difficulty");

  core::ScenarioConfig scenario = bench::JumpScenario();
  scenario.control.name = "incremental-steps";

  std::printf("computing true optimum per regime (offline sweeps)...\n");
  core::OptimumFinder finder(scenario, bench::FastSearch());
  const auto timeline = finder.Timeline(scenario.duration);
  for (const core::OptimumRegime& regime : timeline) {
    std::printf("  regime from t=%4.0f: n_opt=%4.0f peak=%7.1f/s\n",
                regime.start_time, regime.n_opt, regime.peak_throughput);
  }

  const core::ExperimentResult result = core::Experiment(scenario).Run();
  std::printf("\ntrajectory (every 25th interval):\n");
  core::PrintTrajectory(std::cout, result.trajectory, timeline, 25);

  core::TrackingOptions options;
  options.skip_initial = 100.0;
  const core::TrackingStats stats =
      core::EvaluateTracking(result.trajectory, timeline, options);
  std::printf("\ntracking: mean |n*-n_opt| = %.1f (%.0f%% relative), "
              "throughput within 15%% of peak %.0f%% of the time\n",
              stats.mean_abs_error, 100.0 * stats.mean_rel_error,
              100.0 * stats.throughput_capture);
  for (size_t i = 0; i < stats.recovery_times.size(); ++i) {
    std::printf("  recovery after jump %zu: %s\n", i + 1,
                stats.recovery_times[i] < 0.0
                    ? "did not settle within the regime"
                    : util::StrFormat("%.0f s", stats.recovery_times[i])
                          .c_str());
  }
  std::printf("summary: %s\n",
              core::SummaryLine("incremental-steps", result).c_str());
  return 0;
}
