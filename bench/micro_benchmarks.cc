// E18 — component microbenchmarks (google-benchmark): costs of the hot
// paths that bound simulation speed — event queue, RNG, RLS update, lock
// manager grant/release, OCC certification, controller updates, and
// end-to-end simulated events per second.

#include <benchmark/benchmark.h>

#include "control/incremental_steps.h"
#include "control/parabola.h"
#include "control/rls.h"
#include "db/database.h"
#include "db/occ.h"
#include "db/system.h"
#include "db/two_phase_locking.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace {

using namespace alc;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue queue;
  sim::RandomStream rng(1);
  int sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.Push(rng.NextDouble() * 100.0, [&sink] { ++sink; });
    }
    while (!queue.empty()) queue.Pop().cell();
  }
  state.SetItemsProcessed(state.iterations() * 128);
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_EventQueueCancel(benchmark::State& state) {
  // Schedule-then-cancel churn (the restart-timer pattern): exercises the
  // generation-stamp cancellation path and heap compaction.
  sim::EventQueue queue;
  sim::RandomStream rng(1);
  std::vector<sim::EventHandle> handles;
  int sink = 0;
  for (auto _ : state) {
    handles.clear();
    for (int i = 0; i < 64; ++i) {
      handles.push_back(
          queue.Push(rng.NextDouble() * 100.0, [&sink] { ++sink; }));
    }
    for (int i = 0; i < 64; i += 2) queue.Cancel(handles[i]);
    while (!queue.empty()) queue.Pop().cell();
  }
  state.SetItemsProcessed(state.iterations() * 128);
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueCancel);

void BM_RandomExponential(benchmark::State& state) {
  sim::RandomStream rng(2);
  double sink = 0.0;
  for (auto _ : state) {
    sink += rng.NextExponential(1.0);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomExponential);

void BM_SampleWithoutReplacement(benchmark::State& state) {
  // The production path (AccessPatternGenerator): persistent stamp scratch,
  // O(1) duplicate check, no allocation at steady state.
  sim::RandomStream rng(3);
  sim::SampleScratch scratch;
  std::vector<uint32_t> out;
  for (auto _ : state) {
    rng.SampleWithoutReplacement(16000, static_cast<int>(state.range(0)),
                                 &out, &scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SampleWithoutReplacement)->Arg(8)->Arg(16)->Arg(32);

void BM_SampleWithoutReplacementLinearScan(benchmark::State& state) {
  // Scratch-free variant (linear duplicate scan) kept for comparison.
  sim::RandomStream rng(3);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    rng.SampleWithoutReplacement(16000, static_cast<int>(state.range(0)),
                                 &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SampleWithoutReplacementLinearScan)->Arg(8)->Arg(16)->Arg(32);

void BM_RlsUpdate(benchmark::State& state) {
  control::RecursiveLeastSquares rls(3, 0.95, 1e4);
  sim::RandomStream rng(4);
  for (auto _ : state) {
    const double x = rng.NextDouble();
    rls.Update({1.0, x, x * x}, 100.0 - x * x);
  }
  benchmark::DoNotOptimize(rls.coefficients().data());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RlsUpdate);

void BM_ControllerUpdate_IS(benchmark::State& state) {
  control::IncrementalStepsController is(control::IsConfig{});
  control::Sample sample;
  sample.mean_active = 100.0;
  sample.throughput = 150.0;
  double bound = 0.0;
  for (auto _ : state) {
    sample.throughput = 150.0 + (bound - 150.0) * 0.01;
    bound = is.Update(sample);
  }
  benchmark::DoNotOptimize(bound);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControllerUpdate_IS);

void BM_ControllerUpdate_PA(benchmark::State& state) {
  control::ParabolaApproximationController pa(control::PaConfig{});
  control::Sample sample;
  sample.mean_active = 100.0;
  sample.throughput = 150.0;
  double bound = 0.0;
  for (auto _ : state) {
    sample.mean_active = bound > 0 ? bound : 100.0;
    bound = pa.Update(sample);
  }
  benchmark::DoNotOptimize(bound);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControllerUpdate_PA);

void BM_OccCertify(benchmark::State& state) {
  db::Database database(16000);
  db::Metrics metrics;
  db::TimestampCertifier occ(&database, &metrics);
  db::Transaction txn;
  txn.read_set = {1, 100, 1000, 5000, 9000, 12000, 15000, 15999};
  txn.write_set = {100, 9000};
  occ.OnAttemptStart(&txn);
  for (auto _ : state) {
    const bool ok = occ.CertifyCommit(&txn);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OccCertify);

void BM_LockAcquireRelease(benchmark::State& state) {
  sim::Simulator simulator;
  db::Database database(16000);
  db::Metrics metrics;
  metrics.blocked_track.Start(0.0, 0.0);
  db::LockManager lm(&database, &metrics, &simulator);
  lm.SetAbortHook([](db::Transaction*, db::AbortReason) {});
  db::Transaction txn;
  txn.access_items = {1, 2, 3, 4, 5, 6, 7, 8};
  txn.access_modes.assign(8, db::AccessMode::kWrite);
  int sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 8; ++i) {
      lm.RequestAccess(&txn, i, [&sink] { ++sink; });
    }
    lm.OnCommit(&txn);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_LockAcquireRelease);

void BM_EndToEndSimulation(benchmark::State& state) {
  // Simulated events per wall second for the paper-scale system.
  for (auto _ : state) {
    sim::Simulator simulator;
    db::SystemConfig config;  // paper defaults
    config.seed = 5;
    db::TransactionSystem system(&simulator, config);
    system.Start();
    simulator.RunUntil(5.0);
    state.counters["sim_events"] = static_cast<double>(
        simulator.events_executed());
    benchmark::DoNotOptimize(system.metrics().counters.commits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
