// E16 — Section 4.3: admission control alone vs admission + displacement.
// After the optimum jumps *down*, displacement enforces the lower bound
// immediately by aborting active transactions; admission-only waits for
// departures. The paper found admission alone responsive enough and
// smoother — displacement wastes the aborted work.

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "core/report.h"
#include "util/strformat.h"
#include "util/table.h"

int main() {
  using namespace alc;
  bench::PrintHeader(
      "Section 4.3: admission control only vs displacement",
      "displacement enforces lowered bounds instantly but aborts always "
      "waste resources; admission alone was responsive enough");

  // Downward jump: query-heavy (high optimum) -> update-heavy (low).
  core::ScenarioConfig base = bench::PaperScenario();
  base.duration = 700.0;
  base.warmup = 50.0;
  base.dynamics.query_fraction = db::Schedule::Steps(0.85, {{350.0, 0.30}});

  core::OptimumFinder finder(base, bench::FastSearch());
  const auto timeline = finder.Timeline(700.0);
  std::printf("optimum: n_opt=%.0f -> %.0f at t=350\n\n", timeline[0].n_opt,
              timeline[1].n_opt);

  util::Table table({"mode", "throughput", "mean |n*-opt|",
                     "load excess after drop (30s)", "displaced txns",
                     "wasted CPU"});
  for (bool displacement : {false, true}) {
    core::ScenarioConfig scenario = base;
    scenario.control.name = "parabola-approximation";
    scenario.control.displacement = displacement;
    const core::ExperimentResult result = core::Experiment(scenario).Run();
    core::TrackingOptions options;
    options.skip_initial = 100.0;
    const core::TrackingStats stats =
        core::EvaluateTracking(result.trajectory, timeline, options);

    // How far the *measured load* overhangs the bound right after the drop.
    double excess = 0.0;
    int excess_n = 0;
    for (const core::TrajectoryPoint& point : result.trajectory) {
      if (point.time >= 350.0 && point.time <= 380.0) {
        excess += std::max(0.0, point.load - point.bound);
        ++excess_n;
      }
    }
    table.AddRow(
        {displacement ? "admission + displacement" : "admission only",
         util::StrFormat("%.1f", result.mean_throughput),
         util::StrFormat("%.1f", stats.mean_abs_error),
         util::StrFormat("%.1f", excess_n ? excess / excess_n : 0.0),
         util::StrFormat("%llu",
                         static_cast<unsigned long long>(result.displacements)),
         util::StrFormat("%.3f", result.wasted_cpu_fraction)});
  }
  table.Print(std::cout);
  std::printf("\nshape check: displacement trims the post-drop load excess "
              "faster but pays for it in wasted CPU; overall throughput "
              "stays comparable (the paper's rationale for admission-only).\n");
  return 0;
}
