// E15 — Section 5.2: the aging coefficient alpha shapes the estimator's
// memory. Small alpha forgets fast (responsive, noisy); alpha ~ 1 remembers
// everything (stable, but stale after a change — fig. 8's failure). Sweep
// alpha and the dither amplitude on the jump workload.
//
// Both ablations are SweepRunner axes over PA params ("pa.forgetting",
// "pa.dither") on one jump-scenario spec.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/report.h"
#include "util/strformat.h"
#include "util/table.h"

int main() {
  using namespace alc;
  bench::PrintHeader(
      "Section 5.2: PA aging coefficient and excitation dither",
      "choose a small measurement interval and a large alpha; least squares "
      "needs variation in the measurements");

  core::ScenarioConfig base = bench::JumpScenario();
  base.duration = 700.0;
  core::OptimumFinder finder(base, bench::FastSearch());
  const auto timeline = finder.Timeline(700.0);

  const core::ExperimentSpec base_spec = core::SpecFromScenario(base);
  core::TrackingOptions options;
  options.skip_initial = 100.0;

  {
    core::SweepRunner runner(
        base_spec, {{"node.control.pa.forgetting",
                     {"0.8", "0.9", "0.95", "0.98", "0.999"}}});
    const std::vector<core::SweepPointResult> results =
        runner.Run(bench::SweepThreads(runner.num_points()));

    util::Table table({"alpha", "mean |n*-opt|", "recovery after jump",
                       "throughput", "capture"});
    for (const core::SweepPointResult& point : results) {
      const core::ExperimentResult& result = point.result.single;
      const core::TrackingStats stats =
          core::EvaluateTracking(result.trajectory, timeline, options);
      const double recovery =
          stats.recovery_times.empty() ? -1.0 : stats.recovery_times[0];
      table.AddRow(
          {util::StrFormat("%.3f",
                           std::atof(point.assignment[0].second.c_str())),
           util::StrFormat("%.1f", stats.mean_abs_error),
           recovery < 0 ? std::string("none")
                        : util::StrFormat("%.0f s", recovery),
           util::StrFormat("%.1f", result.mean_throughput),
           util::StrFormat("%.2f", stats.throughput_capture)});
    }
    std::printf("alpha sweep (dither=%.0f):\n", base.control.pa.dither);
    table.Print(std::cout);
  }
  {
    core::SweepRunner runner(
        base_spec,
        {{"node.control.pa.dither", {"0", "5", "15", "30", "60"}}});
    const std::vector<core::SweepPointResult> results =
        runner.Run(bench::SweepThreads(runner.num_points()));

    util::Table table({"dither", "mean |n*-opt|", "throughput", "capture"});
    for (const core::SweepPointResult& point : results) {
      const core::ExperimentResult& result = point.result.single;
      const core::TrackingStats stats =
          core::EvaluateTracking(result.trajectory, timeline, options);
      table.AddRow({util::StrFormat("%.0f",
                                    std::atof(
                                        point.assignment[0].second.c_str())),
                    util::StrFormat("%.1f", stats.mean_abs_error),
                    util::StrFormat("%.1f", result.mean_throughput),
                    util::StrFormat("%.2f", stats.throughput_capture)});
    }
    std::printf("\ndither sweep (alpha=%.2f):\n", base.control.pa.forgetting);
    table.Print(std::cout);
  }
  std::printf("\nshape check: alpha~1 never recovers from the jump (stale "
              "memory, fig. 8); zero dither starves the estimator of "
              "excitation; huge dither wastes throughput.\n");
  return 0;
}
